// Telemetry battery: the deterministic log2-bucket Histogram (bucket
// geometry, thread-count-invariant snapshots, merge algebra, the
// Prometheus exposition), the seqlock TelemetryRing under concurrent
// writers, the TelemetrySink slow-log threshold, and the service-level
// contracts — tail/metrics ops, span phase attribution, cache
// verdicts, the stats op's derived fields, trace-drop accounting, and
// the byte-identity guarantee that telemetry never leaks into
// canonical response bytes.  The Histogram / Telemetry suites run
// under the tsan preset (CMakePresets.json test filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"

namespace fmm::obs {
namespace {

// --- Histogram -------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds <= 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(HistogramSnapshot::bucket_of(-5), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(3), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(4), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1023), 10u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1024), 11u);
  EXPECT_EQ(
      HistogramSnapshot::bucket_of(std::numeric_limits<std::int64_t>::max()),
      HistogramSnapshot::kBuckets - 1);

  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    // Every bucket's edges map back into the bucket.
    EXPECT_EQ(HistogramSnapshot::bucket_of(HistogramSnapshot::bucket_lower(b)),
              HistogramSnapshot::bucket_lower(b) == 0 ? 0u : b);
    EXPECT_EQ(HistogramSnapshot::bucket_of(HistogramSnapshot::bucket_upper(b)),
              b);
  }
  EXPECT_EQ(HistogramSnapshot::bucket_upper(HistogramSnapshot::kBuckets - 1),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Histogram, CountSumMaxExact) {
  Histogram h;
  h.record(5);
  h.record(100);
  h.record(-7);  // clamps to 0
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.sum, 105);
  EXPECT_EQ(snap.max, 100);
  EXPECT_EQ(snap.bins[0], 1);  // the clamped negative
  EXPECT_EQ(snap.bins[HistogramSnapshot::bucket_of(5)], 1);
  EXPECT_EQ(snap.bins[HistogramSnapshot::bucket_of(100)], 1);
}

TEST(Histogram, EmptyPercentileIsZero) {
  const HistogramSnapshot empty = Histogram().snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.percentile(0.5), 0);
  EXPECT_EQ(empty.percentile(0.99), 0);
}

TEST(Histogram, PercentileUpperEdgeClampedToMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.record(10);  // bucket [8, 15]
  }
  h.record(1000);  // bucket [512, 1023]
  const HistogramSnapshot snap = h.snapshot();
  // p50 rank lands in the [8, 15] bucket; its upper edge is 15.
  EXPECT_EQ(snap.percentile(0.50), 15);
  // p99 rank = 99, still inside the [8, 15] bucket.
  EXPECT_EQ(snap.percentile(0.99), 15);
  // p100 lands in the 1000 bucket, whose upper edge (1023) clamps to
  // the exact observed max.
  EXPECT_EQ(snap.percentile(1.0), 1000);
  EXPECT_EQ(snap.max, 1000);
}

// The determinism claim the scrape surface rests on: the same multiset
// of values produces bit-identical snapshots no matter how recording
// interleaves across threads.
TEST(Histogram, SnapshotInvariantAcrossThreadCounts) {
  const auto values_for = [](int worker) {
    std::vector<std::int64_t> values;
    for (int i = 0; i < 5000; ++i) {
      // Deterministic pseudo-spread covering many buckets.
      values.push_back((static_cast<std::int64_t>(i) * 2654435761u + worker)
                       % 5000000);
    }
    return values;
  };

  Histogram sequential;
  for (int worker = 0; worker < 8; ++worker) {
    for (const std::int64_t value : values_for(worker)) {
      sequential.record(value);
    }
  }

  Histogram concurrent;
  {
    std::vector<std::thread> threads;
    for (int worker = 0; worker < 8; ++worker) {
      threads.emplace_back([&concurrent, values = values_for(worker)] {
        for (const std::int64_t value : values) {
          concurrent.record(value);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  const HistogramSnapshot a = sequential.snapshot();
  const HistogramSnapshot b = concurrent.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.bins, b.bins);
  for (const double p : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.percentile(p), b.percentile(p)) << "p=" << p;
  }
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram first;
  Histogram second;
  Histogram combined;
  for (std::int64_t v : {1, 5, 9, 1000}) {
    first.record(v);
    combined.record(v);
  }
  for (std::int64_t v : {2, 6, 2000000}) {
    second.record(v);
    combined.record(v);
  }
  HistogramSnapshot merged = first.snapshot();
  merged.merge(second.snapshot());
  const HistogramSnapshot want = combined.snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.max, want.max);
  EXPECT_EQ(merged.bins, want.bins);
}

// --- Registry exposition --------------------------------------------

TEST(Histogram, PrometheusExpositionGolden) {
  auto& registry = Registry::instance();
  registry.reset();
  registry.counter("exposition.test.total").add(7);
  registry.gauge("exposition.test.depth").set(3);
  Histogram& h = registry.histogram("exposition.test.latency");
  h.record(1);     // bucket [1, 1]
  h.record(3);     // bucket [2, 3]
  h.record(900);   // bucket [512, 1023]

  const std::string text = registry.prometheus_text();
  const char* want[] = {
      "# TYPE fmm_exposition_test_total counter\n"
      "fmm_exposition_test_total 7\n",
      "# TYPE fmm_exposition_test_depth gauge\n"
      "fmm_exposition_test_depth 3\n",
      "# TYPE fmm_exposition_test_latency histogram\n",
      "fmm_exposition_test_latency_bucket{le=\"1\"} 1\n",
      "fmm_exposition_test_latency_bucket{le=\"3\"} 2\n",
      "fmm_exposition_test_latency_bucket{le=\"1023\"} 3\n",
      "fmm_exposition_test_latency_bucket{le=\"+Inf\"} 3\n",
      "fmm_exposition_test_latency_sum 904\n",
      "fmm_exposition_test_latency_count 3\n",
  };
  for (const char* fragment : want) {
    EXPECT_NE(text.find(fragment), std::string::npos)
        << "missing fragment:\n" << fragment << "\nin exposition:\n" << text;
  }
  registry.reset();
  // Reset empties histogram samples from the exposition.
  EXPECT_EQ(registry.histogram("exposition.test.latency").snapshot().count,
            0);
}

// --- TelemetryRing ---------------------------------------------------

RequestTelemetry make_record(std::uint64_t i) {
  RequestTelemetry rec;
  rec.seq = i;
  rec.has_id = true;
  rec.id = static_cast<std::int64_t>(i);
  rec.op = "test";
  rec.cache = CacheVerdict::kMiss;
  rec.bytes_in = 10;
  rec.bytes_out = 20;
  rec.total_ns = static_cast<std::int64_t>(100 + i);
  rec.phase(Phase::kParse) = 40;
  rec.phase(Phase::kRender) = static_cast<std::int64_t>(60 + i);
  return rec;
}

TEST(TelemetryRing, KeepsMostRecentOldestFirst) {
  TelemetryRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push(make_record(i));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<RequestTelemetry> records = ring.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 6 + i);  // oldest survivor first
    EXPECT_EQ(records[i].total_ns, static_cast<std::int64_t>(106 + i));
  }
  // limit trims from the old end: the 2 most recent records.
  const std::vector<RequestTelemetry> last2 = ring.snapshot(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].seq, 8u);
  EXPECT_EQ(last2[1].seq, 9u);
}

// Wraparound under concurrent writers: every surviving record must be
// internally consistent (no torn slots), and the drop accounting must
// balance exactly.  Runs under tsan via the preset filter.
TEST(TelemetryRing, WraparoundUnderConcurrentLoad) {
  constexpr std::size_t kCapacity = 32;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  TelemetryRing ring(kCapacity);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&ring, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          RequestTelemetry rec = make_record(i);
          // Make every field derivable from (t, i) so a torn slot is
          // detectable as an inconsistent record.
          rec.id = static_cast<std::int64_t>(t * kPerThread + i);
          rec.total_ns = rec.id * 2 + 1;
          rec.phase(Phase::kRender) = rec.id * 2 + 1 - 40;
          ring.push(rec);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  EXPECT_EQ(ring.recorded(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), kThreads * kPerThread - kCapacity);
  const std::vector<RequestTelemetry> records = ring.snapshot();
  EXPECT_LE(records.size(), kCapacity);
  EXPECT_GE(records.size(), 1u);  // quiescent ring: slots are readable
  for (const RequestTelemetry& rec : records) {
    EXPECT_EQ(rec.total_ns, rec.id * 2 + 1) << "torn slot leaked";
    EXPECT_EQ(rec.phase(Phase::kParse), 40);
    EXPECT_STREQ(rec.op, "test");
  }
}

// --- TelemetrySink ---------------------------------------------------

TEST(TelemetrySink, SlowLogThreshold) {
  Registry::instance().reset();
  TelemetryConfig config;
  config.ring_capacity = 8;
  config.slow_capacity = 8;
  config.slow_threshold_ns = 1000;
  TelemetrySink sink(config);

  RequestTelemetry fast = make_record(0);
  fast.total_ns = 1000;  // at threshold: not slow (strictly above)
  sink.record(fast);
  RequestTelemetry slow = make_record(1);
  slow.total_ns = 1001;
  sink.record(slow);

  EXPECT_EQ(sink.ring().recorded(), 2u);
  EXPECT_EQ(sink.slow().recorded(), 1u);
  EXPECT_EQ(sink.slow_count(), 1u);
  const std::vector<RequestTelemetry> slow_records = sink.slow().snapshot();
  ASSERT_EQ(slow_records.size(), 1u);
  EXPECT_EQ(slow_records[0].total_ns, 1001);
  // seq is assigned by the sink, monotonic across both records.
  EXPECT_EQ(slow_records[0].seq, 1u);

  // The sink fed the registry: per-op latency histogram + counters.
  const HistogramSnapshot lat =
      Registry::instance().histogram("service.latency.test").snapshot();
  EXPECT_EQ(lat.count, 2);
  EXPECT_EQ(lat.sum, 2001);
  Registry::instance().reset();
}

// --- Service integration --------------------------------------------

TEST(QueryServiceTelemetry, SpansCarryPhasesAndCacheVerdicts) {
  obs::Registry::instance().reset();
  service::QueryService service;
  const std::string request =
      "{\"op\": \"simulate\", \"algorithm\": \"strassen\", \"n\": 16, "
      "\"m\": 64}";
  const std::string cold = service.handle_line(request);
  const std::string warm = service.handle_line(request);
  EXPECT_EQ(cold, warm) << "telemetry must not leak into response bytes";

  const std::vector<RequestTelemetry> spans =
      service.telemetry().ring().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].cache, CacheVerdict::kMiss);
  EXPECT_EQ(spans[1].cache, CacheVerdict::kHit);
  EXPECT_STREQ(spans[0].op, "simulate");
  EXPECT_TRUE(spans[0].ok);
  // The cold span did real work in every compute phase.
  EXPECT_GT(spans[0].phase(Phase::kParse), 0);
  EXPECT_GT(spans[0].phase(Phase::kCacheLookup), 0);
  EXPECT_GT(spans[0].phase(Phase::kCdagBuild), 0);
  EXPECT_GT(spans[0].phase(Phase::kSimulate), 0);
  EXPECT_GT(spans[0].total_ns, 0);
  // The warm span replays bytes: no CDAG build, no simulation.
  EXPECT_EQ(spans[1].phase(Phase::kCdagBuild), 0);
  EXPECT_EQ(spans[1].phase(Phase::kSimulate), 0);
  // Phases never sum past the measured total.
  for (const RequestTelemetry& span : spans) {
    std::int64_t phase_sum = 0;
    for (const std::int64_t ns : span.phase_ns) {
      EXPECT_GE(ns, 0);
      phase_sum += ns;
    }
    EXPECT_LE(phase_sum, span.total_ns);
  }
  EXPECT_EQ(spans[0].bytes_in,
            static_cast<std::int64_t>(request.size()));
  EXPECT_EQ(spans[0].bytes_out,
            static_cast<std::int64_t>(cold.size()));
}

TEST(QueryServiceTelemetry, ResponsesCarryNoTelemetryKeys) {
  obs::Registry::instance().reset();
  service::QueryService service;
  for (const char* request :
       {"{\"op\": \"bound\", \"n\": 64, \"m\": 16}",
        "{\"op\": \"simulate\", \"algorithm\": \"winograd\", \"n\": 8, "
        "\"m\": 32}",
        "{\"op\": \"cdag\", \"algorithm\": \"strassen\", \"n\": 4}"}) {
    const std::string response = service.handle_line(request);
    for (const char* leak :
         {"total_ns", "phases_ns", "queue_wait", "cache_lookup",
          "telemetry", "bytes_in", "bytes_out"}) {
      EXPECT_EQ(response.find(leak), std::string::npos)
          << "telemetry key " << leak << " leaked into canonical "
          << "response: " << response;
    }
  }
}

TEST(QueryServiceTelemetry, TailOpReturnsRecentSpans) {
  obs::Registry::instance().reset();
  service::ServiceConfig config;
  config.slow_ms = 0;  // everything lands in the slow log
  service::QueryService service(config);
  service.handle_line("{\"op\": \"bound\", \"n\": 64, \"m\": 16}");
  service.handle_line("{\"op\": \"bound\", \"n\": 128, \"m\": 16}");

  const std::string tail =
      service.handle_line("{\"op\": \"tail\", \"limit\": 1}");
  EXPECT_NE(tail.find("\"ok\": true"), std::string::npos) << tail;
  EXPECT_NE(tail.find("\"slow_threshold_ms\": 0"), std::string::npos);
  EXPECT_NE(tail.find("\"recorded\": 2"), std::string::npos) << tail;
  EXPECT_NE(tail.find("\"cache\": \"miss\""), std::string::npos) << tail;
  EXPECT_NE(tail.find("\"phases_ns\""), std::string::npos);
  // limit 1 keeps only the most recent record (seq 1).
  EXPECT_EQ(tail.find("\"seq\": 0"), std::string::npos) << tail;
  EXPECT_NE(tail.find("\"seq\": 1"), std::string::npos) << tail;
  // Both compute requests exceeded the 0ms threshold.
  EXPECT_NE(tail.find("\"slow_total\": 2"), std::string::npos) << tail;
}

TEST(QueryServiceTelemetry, MetricsOpEmitsExposition) {
  obs::Registry::instance().reset();
  service::QueryService service;
  service.handle_line("{\"op\": \"bound\", \"n\": 64, \"m\": 16}");
  const std::string metrics = service.handle_line("{\"op\": \"metrics\"}");
  EXPECT_NE(metrics.find("\"ok\": true"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("\"format\": \"prometheus-0.0.4\""),
            std::string::npos);
  // The exposition is JSON-escaped inside the response line.
  EXPECT_NE(metrics.find("# TYPE fmm_service_latency_bound histogram"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("fmm_service_latency_bound_count 1"),
            std::string::npos);
}

TEST(QueryServiceTelemetry, StatsCarriesDerivedFields) {
  obs::Registry::instance().reset();
  service::QueryService service;
  const std::string request =
      "{\"op\": \"bound\", \"n\": 64, \"m\": 16}";
  service.handle_line(request);  // miss
  service.handle_line(request);  // hit
  const std::string stats = service.handle_line("{\"op\": \"stats\"}");
  EXPECT_NE(stats.find("\"cache_hit_rate\": 0.5"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"cache_evictions\": 0"), std::string::npos);
  EXPECT_NE(stats.find("\"queue_depth\": 0"), std::string::npos);
}

TEST(QueryServiceTelemetry, ReportSectionValidates) {
  obs::Registry::instance().reset();
  service::QueryService service;
  service.handle_line(
      "{\"op\": \"simulate\", \"algorithm\": \"strassen\", \"n\": 8, "
      "\"m\": 32}");
  const std::string json = service.telemetry_json();
  EXPECT_NE(json.find("\"schema\": \"fmm.telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"simulate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"recent\""), std::string::npos);

  obs::RunReport report("test.telemetry");
  service.attach_to(report);
  const std::string rendered = report.to_json();
  EXPECT_NE(rendered.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(rendered.find("\"service\""), std::string::npos);
}

// --- trace drop accounting (satellite: silent overflow made visible) -

#if FMM_TRACING_ENABLED
TEST(TraceDrops, OverflowLandsInRegistryCounter) {
  auto& registry = Registry::instance();
  registry.reset();
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capacity(4);
  tracer.enable(true);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("overflow_probe", "test");
  }
  tracer.enable(false);
  EXPECT_EQ(tracer.num_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  // The registry counter mirrors the drops — this is what run reports
  // surface under meta.trace.
  EXPECT_EQ(registry.counter("trace.dropped_events").value(), 6);
  tracer.set_capacity(1 << 18);
  tracer.clear();
  registry.reset();
}
#endif

}  // namespace
}  // namespace fmm::obs
