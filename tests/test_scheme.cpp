// Scheme format, Brent verifier and registry battery (docs/SCHEMES.md):
// the whole schemes/ zoo must verify, corrupted coefficients must be
// refused at load, and a scheme loaded from a file must be
// indistinguishable from its catalog twin — same fingerprint, same
// sweep payloads across thread counts, byte-identical service
// responses hot and cold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bilinear/catalog.hpp"
#include "bilinear/scheme.hpp"
#include "common/check.hpp"
#include "service/service.hpp"
#include "sweep/sweep.hpp"

namespace fmm::bilinear {
namespace {

std::string zoo_path(const std::string& file) {
  return std::string(FMM_SOURCE_ROOT) + "/schemes/" + file;
}

const std::vector<std::string>& zoo_files() {
  static const std::vector<std::string> files = {
      "laderman_333_23.json",
      "hk_style_222_7.json",
      "rect_336_46.json",
      "strassen_222_7.json",
  };
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Rational, MakeNormalizes) {
  EXPECT_EQ(rat_make(2, 4), rat_make(1, 2));
  EXPECT_EQ(rat_make(1, -2), rat_make(-1, 2));
  EXPECT_EQ(rat_make(-6, -4), rat_make(3, 2));
  EXPECT_EQ(rat_make(0, 7), rat_make(0, 1));
  EXPECT_THROW(rat_make(1, 0), CheckError);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(rat_add(rat_make(1, 2), rat_make(1, 3)), rat_make(5, 6));
  EXPECT_EQ(rat_add(rat_make(1, 2), rat_make(-1, 2)), rat_make(0, 1));
  EXPECT_EQ(rat_mul(rat_make(2, 3), rat_make(3, 4)), rat_make(1, 2));
  EXPECT_EQ(rat_to_string(rat_make(-3, 1)), "-3");
  EXPECT_EQ(rat_to_string(rat_make(1, 2)), "1/2");
}

TEST(BrentVerifier, AcceptsEveryCatalogAlgorithm) {
  for (const auto& alg : all_fast_2x2_algorithms()) {
    const Scheme scheme = scheme_from_algorithm(alg);
    EXPECT_EQ(verify_scheme(scheme), std::nullopt) << alg.name();
  }
  EXPECT_EQ(verify_scheme(scheme_from_algorithm(classic(2, 3, 4))),
            std::nullopt);
}

TEST(BrentVerifier, AcceptsTheWholeZoo) {
  for (const std::string& file : zoo_files()) {
    EXPECT_NO_THROW({
      const Scheme scheme = load_scheme_file(zoo_path(file));
      EXPECT_EQ(verify_scheme(scheme), std::nullopt) << file;
    }) << file;
  }
}

TEST(BrentVerifier, RejectsCorruptedCoefficient) {
  Scheme scheme = scheme_from_algorithm(strassen());
  scheme.u.at(0, 0) = rat_make(2, 1);  // flip one Strassen coefficient
  const auto exact = first_brent_violation(scheme);
  ASSERT_TRUE(exact.has_value());
  // The fast mod-p necessary condition catches the same corruption.
  EXPECT_TRUE(brent_spot_check_mod_p(scheme).has_value());
}

TEST(BrentVerifier, SpotCheckPassesValidSchemes) {
  EXPECT_EQ(brent_spot_check_mod_p(scheme_from_algorithm(winograd())),
            std::nullopt);
}

TEST(SchemeFile, CorruptedZooFileIsRefusedAtLoad) {
  const std::string text = slurp(zoo_path("laderman_333_23.json"));
  // Corrupt one coefficient value without breaking the JSON shape.
  const std::string needle = "\"w\"";
  const auto at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  std::string corrupted = text;
  const auto digit = corrupted.find_first_of("123456789", at);
  ASSERT_NE(digit, std::string::npos);
  corrupted[digit] = (corrupted[digit] == '9') ? '8' : '9';

  const std::string path = testing::TempDir() + "corrupted_scheme.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << corrupted;
  }
  EXPECT_THROW(load_scheme_file(path), CheckError);
  std::remove(path.c_str());
}

TEST(SchemeFile, JsonRoundTripPreservesFingerprint) {
  const Scheme scheme = scheme_from_algorithm(strassen());
  const Scheme reparsed = parse_scheme_json(scheme_to_json(scheme));
  EXPECT_EQ(scheme_fingerprint(reparsed), scheme_fingerprint(scheme));
  EXPECT_EQ(scheme_to_json(reparsed), scheme_to_json(scheme));
}

TEST(SchemeFile, RationalCoefficientsParse) {
  Scheme scheme = scheme_from_algorithm(strassen());
  scheme.u.at(0, 0) = rat_make(1, 2);  // no longer valid; parsing only
  const Scheme reparsed = parse_scheme_json(scheme_to_json(scheme));
  EXPECT_EQ(reparsed.u.at(0, 0), rat_make(1, 2));
  EXPECT_FALSE(reparsed.is_integer());
  EXPECT_THROW(to_algorithm(reparsed), CheckError);
}

TEST(SchemeFile, ExportedStrassenSharesTheCatalogFingerprint) {
  const Scheme catalog = scheme_from_algorithm(strassen());
  const Scheme file = load_scheme_file(zoo_path("strassen_222_7.json"));
  EXPECT_EQ(scheme_fingerprint(file), scheme_fingerprint(catalog));
}

TEST(SchemeTraits, LadermanParameters) {
  const SchemeTraits traits = SchemeRegistry::instance().traits(
      "file:" + zoo_path("laderman_333_23.json"));
  EXPECT_EQ(traits.name, "laderman");
  EXPECT_EQ(traits.n, 3u);
  EXPECT_EQ(traits.rank, 23u);
  EXPECT_EQ(traits.base, 3u);
  EXPECT_NEAR(traits.omega0, std::log(23.0) / std::log(3.0), 1e-12);
  EXPECT_EQ(traits.fingerprint.size(), 16u);
}

TEST(SchemeTraits, RectangularSchemesHaveNoBase) {
  const SchemeTraits traits = SchemeRegistry::instance().traits(
      "file:" + zoo_path("rect_336_46.json"));
  EXPECT_EQ(traits.base, 0u);
  EXPECT_EQ(traits.omega0, 0.0);
}

TEST(Registry, ResolvesCatalogParameterizedAndFileKeys) {
  auto& registry = SchemeRegistry::instance();
  EXPECT_EQ(registry.resolve("strassen").num_products(), 7u);
  EXPECT_EQ(registry.resolve("classic-2x3x4").num_products(), 24u);
  EXPECT_EQ(registry
                .resolve("file:" + zoo_path("laderman_333_23.json"))
                .num_products(),
            23u);
  EXPECT_THROW(registry.resolve("no-such-algorithm"), CheckError);
  EXPECT_THROW(registry.resolve("file:/no/such/path.json"), CheckError);
}

TEST(Registry, SweepResolveAlgorithmRejectsUnknownNames) {
  // Regression: unknown names used to fall back to strassen silently.
  EXPECT_THROW(sweep::resolve_algorithm("no-such-algorithm"), CheckError);
  EXPECT_THROW(sweep::resolve_traits("no-such-algorithm"), CheckError);
  EXPECT_NO_THROW(sweep::resolve_algorithm("strassen-alt"));
  EXPECT_NO_THROW(sweep::resolve_traits("winograd-alt"));
}

sweep::SweepSpec scheme_spec(const std::string& algorithm) {
  sweep::SweepSpec spec;
  spec.algorithms = {algorithm};
  spec.n_grid = {4, 8};
  spec.m_grid = {16, 64};
  spec.kinds = {sweep::TaskKind::kSimulate, sweep::TaskKind::kLiveness,
                sweep::TaskKind::kBoundCheck};
  spec.base_seed = 42;
  return spec;
}

TEST(FileLoadedScheme, SweepPayloadsMatchCatalogAcrossThreads) {
  // A file-loaded Strassen must produce the same SimResults as the
  // catalog constructor at every thread count, warm or cold cache.
  sweep::SweepSpec catalog = scheme_spec("strassen");
  catalog.num_threads = 1;
  const sweep::SweepResult reference = sweep::run_sweep(catalog);

  sweep::SweepSpec from_file =
      scheme_spec("file:" + zoo_path("strassen_222_7.json"));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    from_file.num_threads = threads;
    const sweep::SweepResult result = sweep::run_sweep(from_file);
    ASSERT_EQ(result.tasks.size(), reference.tasks.size());
    for (std::size_t i = 0; i < result.tasks.size(); ++i) {
      const sweep::TaskResult& a = reference.tasks[i];
      const sweep::TaskResult& b = result.tasks[i];
      EXPECT_EQ(b.loads, a.loads) << i;
      EXPECT_EQ(b.stores, a.stores) << i;
      EXPECT_EQ(b.total_io, a.total_io) << i;
      EXPECT_EQ(b.weighted_io, a.weighted_io) << i;
      EXPECT_EQ(b.computations, a.computations) << i;
      EXPECT_EQ(b.liveness_peak, a.liveness_peak) << i;
      EXPECT_EQ(b.lower_bound, a.lower_bound) << i;
      EXPECT_EQ(b.scheme_fingerprint, a.scheme_fingerprint) << i;
      EXPECT_EQ(b.scheme_name, a.scheme_name) << i;
      EXPECT_EQ(b.omega0, a.omega0) << i;
    }
  }
}

TEST(FileLoadedScheme, TaskRowsCarrySchemeFields) {
  sweep::SweepSpec spec = scheme_spec("strassen");
  spec.num_threads = 1;
  const sweep::SweepResult result = sweep::run_sweep(spec);
  for (const sweep::TaskResult& task : result.tasks) {
    EXPECT_EQ(task.scheme_name, "strassen");
    EXPECT_EQ(task.scheme_fingerprint.size(), 16u);
    const std::string row = sweep::task_row_json(task);
    EXPECT_NE(row.find("\"scheme\": \"strassen\""), std::string::npos);
    EXPECT_NE(row.find("\"scheme_fingerprint\": \""), std::string::npos);
    EXPECT_NE(row.find("\"omega0\": "), std::string::npos);
  }
}

std::string simulate_request(const std::string& algorithm) {
  return "{\"id\": 1, \"op\": \"simulate\", \"algorithm\": \"" + algorithm +
         "\", \"n\": 8, \"m\": 64}";
}

TEST(FileLoadedScheme, ServiceResponsesAreByteIdenticalToCatalog) {
  // The acceptance contract: resolving a scheme via registry name vs
  // loading the equivalent file must answer with the same response
  // BYTES, cold cache and hot.
  const std::string file_key = "file:" + zoo_path("strassen_222_7.json");
  service::QueryService svc;
  const std::string by_name_cold = svc.handle_line(simulate_request("strassen"));
  const std::string by_file_hot = svc.handle_line(simulate_request(file_key));
  EXPECT_EQ(by_file_hot, by_name_cold);

  // Cold cache for the file key too: a fresh service, file first.
  service::QueryService fresh;
  const std::string by_file_cold = fresh.handle_line(simulate_request(file_key));
  const std::string by_name_hot = fresh.handle_line(simulate_request("strassen"));
  EXPECT_EQ(by_file_cold, by_name_cold);
  EXPECT_EQ(by_name_hot, by_name_cold);
}

TEST(FileLoadedScheme, ServiceValidatesBaseDimNotPowerOfTwo) {
  service::QueryService svc;
  const std::string laderman =
      "file:" + zoo_path("laderman_333_23.json");
  // n=27 is fine for a base-3 scheme (and would be refused for base 2)…
  const std::string ok = svc.handle_line(
      "{\"op\": \"simulate\", \"algorithm\": \"" + laderman +
      "\", \"n\": 27, \"m\": 64}");
  EXPECT_NE(ok.find("\"ok\": true"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"omega0\": 2.8540498302"), std::string::npos) << ok;
  // …while n=16 is not a power of 3.
  const std::string bad = svc.handle_line(
      "{\"op\": \"simulate\", \"algorithm\": \"" + laderman +
      "\", \"n\": 16, \"m\": 64}");
  EXPECT_NE(bad.find("usage_error: "), std::string::npos) << bad;
  EXPECT_NE(bad.find("power of the scheme's base dim 3"), std::string::npos)
      << bad;
  // Rectangular schemes cannot drive the recursive construction at all.
  const std::string rect = svc.handle_line(
      "{\"op\": \"cdag\", \"algorithm\": \"file:" +
      zoo_path("rect_336_46.json") + "\", \"n\": 9}");
  EXPECT_NE(rect.find("usage_error: "), std::string::npos) << rect;
  EXPECT_NE(rect.find("rectangular"), std::string::npos) << rect;
}

}  // namespace
}  // namespace fmm::bilinear
