// Tests for CDAG construction: structure of H^{n x n}, Lemma 2.2
// cardinalities, roles, spans, and sub-problem bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fmm::cdag {
namespace {

using bilinear::strassen;
using bilinear::winograd;

TEST(Builder, BaseCaseStructure) {
  // H^{2x2} is Figure 1 of the paper: 4+4 inputs, 7+7 encoder vertices,
  // 7 products, 4 outputs.
  const Cdag cdag = build_cdag(strassen(), 2);
  cdag.validate();
  const auto hist = cdag.role_histogram();
  EXPECT_EQ(hist.at(Role::kInputA), 4u);
  EXPECT_EQ(hist.at(Role::kInputB), 4u);
  EXPECT_EQ(hist.at(Role::kEncodeA), 7u);
  EXPECT_EQ(hist.at(Role::kEncodeB), 7u);
  EXPECT_EQ(hist.at(Role::kProduct), 7u);
  EXPECT_EQ(hist.at(Role::kOutput), 4u);
  EXPECT_EQ(hist.count(Role::kDecode), 0u);  // top-level decodes = outputs
}

TEST(Builder, BaseCaseEdgeCount) {
  const Cdag cdag = build_cdag(strassen(), 2);
  // Encoder edges = nnz(U) + nnz(V) = 12 + 12; product edges = 2*7;
  // decoder edges = nnz(W) = 12.
  EXPECT_EQ(cdag.graph.num_edges(), 12u + 12u + 14u + 12u);
}

TEST(Builder, ValidatesForAllCatalogAlgorithms) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    for (const std::size_t n : {2u, 4u, 8u}) {
      const Cdag cdag = build_cdag(alg, n);
      EXPECT_NO_THROW(cdag.validate()) << alg.name() << " n=" << n;
    }
  }
}

TEST(Builder, Lemma22OutputCounts) {
  // |V_out(SUB_H^{r x r})| = (n/r)^{log2 7} * r^2.
  const Cdag cdag = build_cdag(strassen(), 8);
  EXPECT_EQ(cdag.sub_outputs_flat(8).size(), 64u);            // 1 * 64
  EXPECT_EQ(cdag.sub_outputs_flat(4).size(), 7u * 16u);       // 7 * 16
  EXPECT_EQ(cdag.sub_outputs_flat(2).size(), 49u * 4u);       // 49 * 4
  EXPECT_EQ(cdag.sub_outputs_flat(1).size(), 343u * 1u);      // 343
}

TEST(Builder, ExpectedSubOutputCountFormula) {
  const auto alg = strassen();
  EXPECT_EQ(expected_sub_output_count(alg, 8, 2), 196u);
  EXPECT_EQ(expected_sub_output_count(alg, 8, 8), 64u);
  EXPECT_EQ(expected_sub_output_count(alg, 16, 4), 49u * 16u);
  const auto classic = bilinear::classic(2, 2, 2);
  EXPECT_EQ(expected_sub_output_count(classic, 8, 2), 64u * 4u);
}

TEST(Builder, SubproblemCountsMatchLemma22) {
  const Cdag cdag = build_cdag(winograd(), 8);
  EXPECT_EQ(cdag.subproblems(8).count, 1u);
  EXPECT_EQ(cdag.subproblems(4).count, 7u);
  EXPECT_EQ(cdag.subproblems(2).count, 49u);
  EXPECT_EQ(cdag.subproblems(1).count, 343u);
  EXPECT_TRUE(cdag.has_subproblems(4));
  EXPECT_FALSE(cdag.has_subproblems(3));
  EXPECT_THROW(cdag.subproblems(16), CheckError);
}

TEST(Builder, InputsAreSourcesOutputsAreSinks) {
  const Cdag cdag = build_cdag(strassen(), 4);
  const auto sources = cdag.graph.sources();
  EXPECT_EQ(sources.size(), 32u);  // 2 * 16 inputs
  const auto sinks = cdag.graph.sinks();
  EXPECT_EQ(sinks.size(), 16u);
}

TEST(Builder, CreationOrderIsTopological) {
  const Cdag cdag = build_cdag(strassen(), 8);
  // Every edge except those out of inputs goes from lower to higher id.
  for (graph::VertexId v = 0; v < cdag.graph.num_vertices(); ++v) {
    for (const graph::VertexId w : cdag.graph.out_neighbors(v)) {
      EXPECT_LT(v, w);
    }
  }
}

TEST(Builder, EveryOutputReachableFromInputs) {
  const Cdag cdag = build_cdag(winograd(), 4);
  const auto reach = cdag.graph.reachable_from(cdag.all_inputs());
  for (const graph::VertexId v : cdag.outputs) {
    EXPECT_TRUE(reach[v]);
  }
}

TEST(Builder, ProductsHaveInDegreeTwo) {
  const Cdag cdag = build_cdag(strassen(), 4);
  std::size_t products = 0;
  for (graph::VertexId v = 0; v < cdag.graph.num_vertices(); ++v) {
    if (cdag.roles[v] == Role::kProduct) {
      ++products;
      EXPECT_EQ(cdag.graph.in_degree(v), 2u);
    }
  }
  EXPECT_EQ(products, 49u);  // 7^2 scalar products at n=4
}

TEST(Builder, SpansAreNestedAndSized) {
  const Cdag cdag = build_cdag(strassen(), 4);
  // Sub-problems of size 2: 7 of them, disjoint spans.
  const SubproblemLevel& level2 = cdag.subproblems(2);
  ASSERT_EQ(level2.count, 7u);
  for (std::size_t i = 0; i + 1 < level2.count; ++i) {
    EXPECT_LE(level2.span_of(i).second, level2.span_of(i + 1).first);
  }
  // The size-4 span contains all size-2 spans.
  const auto span4 = cdag.subproblems(4).span_of(0);
  for (std::size_t i = 0; i < level2.count; ++i) {
    const auto [b, e] = level2.span_of(i);
    EXPECT_GE(b, span4.first);
    EXPECT_LE(e, span4.second);
  }
}

TEST(Builder, SubInternalVerticesExcludeOutputs) {
  const Cdag cdag = build_cdag(strassen(), 4);
  const auto internal = cdag.sub_internal_vertices(2);
  std::vector<bool> is_output(cdag.graph.num_vertices(), false);
  for (const graph::VertexId v : cdag.sub_outputs_flat(2)) {
    is_output[v] = true;
  }
  for (const graph::VertexId v : internal) {
    EXPECT_FALSE(is_output[v]);
  }
  // Size-2 sub-CDAG: 7 encA + 7 encB + 7 products internal, 4 outputs.
  EXPECT_EQ(internal.size(), 7u * 21u);
}

TEST(Builder, SubproblemInputsTracked) {
  const Cdag cdag = build_cdag(strassen(), 4);
  const SubproblemLevel& level2 = cdag.subproblems(2);
  ASSERT_EQ(level2.count, 7u);
  for (std::size_t i = 0; i < level2.count; ++i) {
    const auto operands = level2.inputs_of(i);
    EXPECT_EQ(operands.size(), 8u);  // 2 * r^2 with r = 2
    // Operands of a size-2 sub-problem are the parent's encode vertices.
    for (const graph::VertexId v : operands) {
      EXPECT_TRUE(cdag.roles[v] == Role::kEncodeA ||
                  cdag.roles[v] == Role::kEncodeB);
    }
  }
  // Top-level sub-problem inputs are the CDAG inputs.
  const auto top_ins = cdag.subproblems(4).inputs_of(0);
  ASSERT_EQ(top_ins.size(), 32u);
  const std::vector<graph::VertexId> all = cdag.all_inputs();
  EXPECT_TRUE(std::equal(top_ins.begin(), top_ins.end(), all.begin(),
                         all.end()));
}

TEST(Builder, VertexCountRecurrence) {
  // V(s) = 2 b^2 s^2 (inputs only at top) ... verify the internal count
  // recurrence V(s) = 18 (s/2)^2 + 7 V(s/2), V(1) = 1, against the
  // constructed graph (excluding the 2 n^2 input vertices).
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    const Cdag cdag = build_cdag(strassen(), n);
    std::function<std::size_t(std::size_t)> count = [&](std::size_t s) {
      if (s == 1) {
        return std::size_t{1};
      }
      return 18 * (s / 2) * (s / 2) + 7 * count(s / 2);
    };
    EXPECT_EQ(cdag.graph.num_vertices(), 2 * n * n + count(n)) << n;
  }
}

TEST(Builder, DotOutputNonEmpty) {
  const Cdag cdag = build_cdag(strassen(), 2);
  const std::string dot = cdag.to_dot();
  EXPECT_NE(dot.find("mul"), std::string::npos);
  EXPECT_NE(dot.find("inA"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Builder, RejectsNonPowerSizes) {
  EXPECT_THROW(build_cdag(strassen(), 6), CheckError);
  EXPECT_THROW(build_cdag(strassen(), 3), CheckError);
}

TEST(Builder, RejectsRectangularBase) {
  EXPECT_THROW(build_cdag(bilinear::rect_2x2x4(), 4), CheckError);
}

TEST(Builder, ClassicAlgorithmCdag) {
  // The classical 2x2x2 recursion has 8^{log2 n} products.
  const Cdag cdag = build_cdag(bilinear::classic(2, 2, 2), 4);
  cdag.validate();
  EXPECT_EQ(cdag.role_histogram().at(Role::kProduct), 64u);
  EXPECT_EQ(cdag.sub_outputs_flat(2).size(), 8u * 4u);
}

TEST(Builder, StrassenSquaredBase4) {
  // <4,4,4;49> base: one level of recursion at n=4.
  const Cdag cdag = build_cdag(bilinear::strassen_squared(), 4);
  cdag.validate();
  EXPECT_EQ(cdag.role_histogram().at(Role::kProduct), 49u);
}

TEST(Builder, TrivialSizeOne) {
  const Cdag cdag = build_cdag(strassen(), 1);
  EXPECT_EQ(cdag.graph.num_vertices(), 3u);
  EXPECT_EQ(cdag.outputs.size(), 1u);
}

TEST(RoleName, AllNamed) {
  EXPECT_STREQ(role_name(Role::kInputA), "inA");
  EXPECT_STREQ(role_name(Role::kProduct), "mul");
  EXPECT_STREQ(role_name(Role::kOutput), "out");
}

}  // namespace
}  // namespace fmm::cdag
