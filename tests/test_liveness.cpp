// Tests for the liveness profiler (zero-spill memory requirement) and
// 2.5D classical communication.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "parallel/classical_comm.hpp"
#include "pebble/liveness.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"

namespace fmm::pebble {
namespace {

using cdag::build_cdag;

TEST(Liveness, BaseCaseProfile) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 2);
  const auto profile = liveness_profile(cdag, dfs_schedule(cdag));
  EXPECT_EQ(profile.live_after.size(), 25u);  // non-input vertices
  EXPECT_GE(profile.peak, 8u);                // at least the inputs
  EXPECT_LE(profile.peak, 25u);
}

TEST(Liveness, PeakGrowsWithN) {
  std::size_t prev = 0;
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    const cdag::Cdag cdag = build_cdag(bilinear::strassen(), n);
    const std::size_t peak =
        min_cache_for_zero_spill(cdag, dfs_schedule(cdag));
    EXPECT_GT(peak, prev) << "n=" << n;
    prev = peak;
  }
}

TEST(Liveness, PeakIsThetaOfN2ForDfs) {
  // DFS on Strassen keeps O(n^2) values live (the recursion frontier).
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 16);
  const std::size_t peak =
      min_cache_for_zero_spill(cdag, dfs_schedule(cdag));
  EXPECT_GE(peak, 16u * 16u / 2);
  EXPECT_LE(peak, 12u * 16u * 16u);
}

TEST(Liveness, AtPeakCacheIoCollapsesToFloor) {
  // Give the simulator the zero-spill budget plus slack and a
  // liveness-aware policy (Belady never evicts a live value while a dead
  // one is resident): I/O equals the trivial floor.  LRU needs more
  // slack — it can evict long-idle live values.
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 8);
  const auto schedule = dfs_schedule(cdag);
  const std::size_t peak = min_cache_for_zero_spill(cdag, schedule);
  SimOptions options;
  options.cache_size = static_cast<std::int64_t>(peak) + 8;
  options.replacement = ReplacementPolicy::kBelady;
  const auto result = simulate(cdag, schedule, options);
  EXPECT_EQ(result.total_io(), trivial_io_floor(cdag));
}

TEST(Liveness, BelowPeakForcesSpills) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 8);
  const auto schedule = dfs_schedule(cdag);
  const std::size_t peak = min_cache_for_zero_spill(cdag, schedule);
  SimOptions options;
  options.cache_size = static_cast<std::int64_t>(peak) / 4;
  const auto result = simulate(cdag, schedule, options);
  EXPECT_GT(result.total_io(), trivial_io_floor(cdag));
}

TEST(Liveness, BfsPeakExceedsDfsPeak) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 16);
  EXPECT_GT(min_cache_for_zero_spill(cdag, bfs_schedule(cdag)),
            min_cache_for_zero_spill(cdag, dfs_schedule(cdag)));
}

TEST(Liveness, ProfileMonotoneSanity) {
  const cdag::Cdag cdag = build_cdag(bilinear::winograd(), 4);
  const auto profile = liveness_profile(cdag, dfs_schedule(cdag));
  // Peak step points at the recorded maximum.
  EXPECT_EQ(profile.live_after[profile.peak_step], profile.peak);
  for (const std::size_t live : profile.live_after) {
    EXPECT_LE(live, profile.peak);
  }
}

TEST(Liveness, RejectsInvalidSchedule) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 2);
  auto schedule = dfs_schedule(cdag);
  schedule.pop_back();
  EXPECT_THROW(liveness_profile(cdag, schedule), CheckError);
}

}  // namespace
}  // namespace fmm::pebble

namespace fmm::parallel {
namespace {

TEST(Classical25d, InterpolatesBetween2dAnd3d) {
  const std::int64_t n = 1024;
  // c = 1 on a 64-processor square grid reproduces Cannon's volume
  // (modulo the initial skew accounting).
  const auto c1 = classical_25d(n, 64, 1);
  const auto cannon = cannon_2d(n, 64);
  EXPECT_NEAR(static_cast<double>(c1.words_per_proc),
              static_cast<double>(cannon.words_per_proc),
              static_cast<double>(cannon.words_per_proc) * 0.2);
  // Larger c strictly reduces communication.
  const auto c4 = classical_25d(n, 256, 4);
  const auto c1_256 = classical_25d(n, 256, 1);
  EXPECT_LT(c4.words_per_proc, c1_256.words_per_proc);
}

TEST(Classical25d, MatchesSqrtCpScaling) {
  // words ~ 2 n^2 / sqrt(c P): quadrupling c halves the shift volume.
  const std::int64_t n = 4096;
  const auto a = classical_25d(n, 1024, 1);
  const auto b = classical_25d(n, 1024, 4);
  const double shift_a = static_cast<double>(a.words_per_proc);
  const double shift_b = static_cast<double>(b.words_per_proc);
  // Pure shift terms scale by sqrt(4) = 2; replication/reduction
  // overhead dilutes the measured ratio slightly below that.
  EXPECT_GE(shift_a / shift_b, 1.4);
  EXPECT_LT(shift_a / shift_b, 2.5);
}

TEST(Classical25d, RejectsBadConfigs) {
  EXPECT_THROW(classical_25d(64, 10, 3), fmm::CheckError);   // c !| P
  EXPECT_THROW(classical_25d(64, 12, 3), fmm::CheckError);   // P/c not square
  EXPECT_THROW(classical_25d(10, 64, 1), fmm::CheckError);   // grid !| n
  EXPECT_THROW(classical_25d(64, 144, 3), fmm::CheckError);  // c !| grid
}

}  // namespace
}  // namespace fmm::parallel
