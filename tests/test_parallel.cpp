// Tests for the distributed communication simulators (CAPS Strassen,
// classical 2D/3D) and the shared-memory parallel executor.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "bounds/formulas.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "linalg/matmul.hpp"
#include "parallel/caps.hpp"
#include "parallel/classical_comm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/thread_pool.hpp"

#include <atomic>

namespace fmm::parallel {
namespace {

TEST(Caps, SingleProcessorNoCommunication) {
  const CapsResult r = simulate_caps(64, 1);
  EXPECT_EQ(r.words_per_proc, 0);
  EXPECT_EQ(r.bfs_steps, 0);
  EXPECT_EQ(r.dfs_steps, 0);
}

TEST(Caps, UnlimitedMemoryUsesBfsOnly) {
  const CapsResult r = simulate_caps(64, 49);
  EXPECT_EQ(r.bfs_steps, 2);
  EXPECT_EQ(r.dfs_steps, 0);
  EXPECT_GT(r.words_per_proc, 0);
  EXPECT_TRUE(r.feasible);
}

TEST(Caps, LimitedMemoryForcesDfs) {
  const std::int64_t n = 64;
  // Memory just above 3n^2/P: BFS (needs 6.5 n^2/P) is infeasible at the
  // top, forcing DFS steps first.
  const std::int64_t p = 49;
  const std::int64_t m = 4 * n * n / p;
  const CapsResult r = simulate_caps(n, p, m);
  EXPECT_GT(r.dfs_steps, 0);
  EXPECT_GT(r.words_per_proc, simulate_caps(n, p).words_per_proc);
}

TEST(Caps, CommunicationAboveMemoryIndependentBound) {
  // Unlimited memory: CAPS attains Θ(n^2 / P^{2/ω0}); measured words must
  // sit above the bound value (constants are > 1 here).
  for (const std::int64_t p : {7, 49, 343}) {
    const std::int64_t n = 256;
    const CapsResult r = simulate_caps(n, p);
    const double bound = bounds::fast_memory_independent(
        {static_cast<double>(n), 1.0, static_cast<double>(p)}, kOmega0);
    EXPECT_GE(static_cast<double>(r.words_per_proc), bound / 4.0)
        << "P=" << p;
  }
}

TEST(Caps, CommunicationAboveMemoryDependentBoundWhenTight) {
  const std::int64_t n = 256;
  const std::int64_t p = 49;
  const std::int64_t m = 3 * n * n / p;  // tight memory
  const CapsResult r = simulate_caps(n, p, m);
  const double bound = bounds::fast_parallel_bound(
      {static_cast<double>(n), static_cast<double>(m),
       static_cast<double>(p)},
      kOmega0);
  EXPECT_GE(static_cast<double>(r.words_per_proc), bound / 8.0);
}

TEST(Caps, StrongScalingReducesWords) {
  const std::int64_t n = 512;
  std::int64_t prev = INT64_MAX;
  for (const std::int64_t p : {1, 7, 49, 343}) {
    const CapsResult r = simulate_caps(n, p);
    EXPECT_LT(r.words_per_proc, prev) << "P=" << p;
    if (r.words_per_proc > 0) {
      prev = r.words_per_proc;
    }
  }
}

TEST(Caps, RejectsNonPowerOf7) {
  EXPECT_THROW(simulate_caps(64, 6), CheckError);
  EXPECT_THROW(simulate_caps(64, 14), CheckError);
}

TEST(Caps, RejectsTooManyProcs) {
  EXPECT_THROW(simulate_caps(2, 49), CheckError);
}

TEST(Cannon, CommunicationVolume) {
  // 2 n^2 / sqrt(P) words per processor (tile shifts).
  const ClassicalCommResult r = cannon_2d(64, 16);
  EXPECT_EQ(r.words_per_proc, 2 * 16 * 16 * 4);  // 2*tile^2*grid
  EXPECT_EQ(r.rounds, 4);
  EXPECT_EQ(r.memory_per_proc, 3 * 16 * 16);
}

TEST(Cannon, MatchesMemoryDependentBoundShape) {
  // With M = Θ(n^2/P), Cannon is optimal: measured/bound bounded.
  for (const std::int64_t p : {4, 16, 64}) {
    const std::int64_t n = 256;
    const ClassicalCommResult r = cannon_2d(n, p);
    const double m = 3.0 * n * n / static_cast<double>(p);
    const double bound = bounds::classic_memory_dependent(
        {static_cast<double>(n), m, static_cast<double>(p)});
    const double ratio = static_cast<double>(r.words_per_proc) / bound;
    EXPECT_GT(ratio, 0.3) << "P=" << p;
    EXPECT_LT(ratio, 10.0) << "P=" << p;
  }
}

TEST(Cannon, RejectsBadGrid) {
  EXPECT_THROW(cannon_2d(64, 5), CheckError);
  EXPECT_THROW(cannon_2d(10, 16), CheckError);  // 4 does not divide 10
}

TEST(Classical3d, CommunicationVolume) {
  const ClassicalCommResult r = classical_3d(64, 64);  // grid 4
  EXPECT_EQ(r.words_per_proc, 3 * 16 * 16);
  EXPECT_EQ(r.rounds, 2);
}

TEST(Classical3d, MatchesMemoryIndependentBound) {
  for (const std::int64_t p : {8, 64, 512}) {
    const std::int64_t n = 512;
    const ClassicalCommResult r = classical_3d(n, p);
    const double bound = bounds::classic_memory_independent(
        {static_cast<double>(n), 1.0, static_cast<double>(p)});
    const double ratio = static_cast<double>(r.words_per_proc) / bound;
    EXPECT_GT(ratio, 0.5) << "P=" << p;
    EXPECT_LT(ratio, 6.0) << "P=" << p;
  }
}

TEST(Classical3d, BeatsCannonAtScale)  {
  const std::int64_t n = 512;
  const std::int64_t p = 64;
  EXPECT_LT(classical_3d(n, p).words_per_proc,
            cannon_2d(n, p).words_per_proc);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelStrassen, MatchesOracleOneLevel) {
  linalg::Mat a(32, 32), b(32, 32);
  linalg::fill_random(a, 1);
  linalg::fill_random(b, 2);
  ParallelRunStats stats;
  const linalg::Mat c =
      multiply_parallel(bilinear::strassen(), a, b, 1, 4, &stats);
  EXPECT_LT(linalg::max_abs_diff(c, linalg::multiply_naive(a, b)), 1e-8);
  EXPECT_EQ(stats.tasks, 7u);
  EXPECT_EQ(stats.threads, 4u);
}

TEST(ParallelStrassen, MatchesOracleTwoLevels) {
  linalg::Mat a(64, 64), b(64, 64);
  linalg::fill_random(a, 3);
  linalg::fill_random(b, 4);
  ParallelRunStats stats;
  const linalg::Mat c =
      multiply_parallel(bilinear::winograd(), a, b, 2, 0, &stats);
  EXPECT_LT(linalg::max_abs_diff(c, linalg::multiply_naive(a, b)), 1e-8);
  EXPECT_EQ(stats.tasks, 49u);
}

TEST(ParallelStrassen, TooSmallMatrixRejected) {
  linalg::Mat a(2, 2), b(2, 2);
  EXPECT_THROW(multiply_parallel(bilinear::strassen(), a, b, 2), CheckError);
}

}  // namespace
}  // namespace fmm::parallel
