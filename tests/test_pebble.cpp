// Tests for the two-level machine simulator (red-blue pebble executor),
// schedule generators, and the recomputation runner.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "bounds/formulas.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"

namespace fmm::pebble {
namespace {

using cdag::build_cdag;

cdag::Cdag strassen_cdag(std::size_t n) {
  return build_cdag(bilinear::strassen(), n);
}

TEST(Schedules, DfsIsValid) {
  for (const std::size_t n : {2u, 4u, 8u}) {
    const cdag::Cdag cdag = strassen_cdag(n);
    EXPECT_TRUE(is_valid_schedule(cdag, dfs_schedule(cdag))) << n;
  }
}

TEST(Schedules, BfsIsValid) {
  const cdag::Cdag cdag = strassen_cdag(8);
  EXPECT_TRUE(is_valid_schedule(cdag, bfs_schedule(cdag)));
}

TEST(Schedules, RandomTopologicalIsValid) {
  const cdag::Cdag cdag = strassen_cdag(4);
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(is_valid_schedule(cdag, random_topological_schedule(cdag,
                                                                    rng)));
  }
}

TEST(Schedules, InvalidSchedulesRejected) {
  const cdag::Cdag cdag = strassen_cdag(2);
  auto schedule = dfs_schedule(cdag);
  // Reversed order breaks dependencies.
  std::vector<graph::VertexId> reversed(schedule.rbegin(), schedule.rend());
  EXPECT_FALSE(is_valid_schedule(cdag, reversed));
  // Missing one vertex.
  auto truncated = schedule;
  truncated.pop_back();
  EXPECT_FALSE(is_valid_schedule(cdag, truncated));
  // Duplicate vertex.
  auto duplicated = schedule;
  duplicated.push_back(schedule.back());
  EXPECT_FALSE(is_valid_schedule(cdag, duplicated));
  // Contains an input.
  auto with_input = schedule;
  with_input.insert(with_input.begin(), cdag.inputs_a[0]);
  EXPECT_FALSE(is_valid_schedule(cdag, with_input));
}

TEST(Machine, TinyCdagExactIo) {
  // H^{2x2} with a huge cache: every input read once, every output
  // written once: IO = 8 + 4 = trivial floor.
  const cdag::Cdag cdag = strassen_cdag(2);
  SimOptions options;
  options.cache_size = 1000;
  const SimResult result = simulate(cdag, dfs_schedule(cdag), options);
  EXPECT_EQ(result.loads, 8);
  EXPECT_EQ(result.stores, 4);
  EXPECT_EQ(result.total_io(), trivial_io_floor(cdag));
  EXPECT_EQ(result.recomputations, 0);
}

TEST(Machine, TrivialFloorValue) {
  EXPECT_EQ(trivial_io_floor(strassen_cdag(4)), 3 * 16);
}

TEST(Machine, IoNeverBelowTrivialFloor) {
  const cdag::Cdag cdag = strassen_cdag(8);
  for (const std::int64_t m : {8, 16, 32, 64, 1 << 20}) {
    SimOptions options;
    options.cache_size = m;
    const SimResult result = simulate(cdag, dfs_schedule(cdag), options);
    EXPECT_GE(result.total_io(), trivial_io_floor(cdag)) << "M=" << m;
  }
}

TEST(Machine, IoDecreasesWithCache) {
  const cdag::Cdag cdag = strassen_cdag(16);
  const auto schedule = dfs_schedule(cdag);
  std::int64_t prev = INT64_MAX;
  for (const std::int64_t m : {8, 32, 128, 512, 4096}) {
    SimOptions options;
    options.cache_size = m;
    const SimResult result = simulate(cdag, schedule, options);
    EXPECT_LE(result.total_io(), prev) << "M=" << m;
    prev = result.total_io();
  }
}

TEST(Machine, BeladyNeverWorseThanLruOnDfs) {
  const cdag::Cdag cdag = strassen_cdag(8);
  const auto schedule = dfs_schedule(cdag);
  for (const std::int64_t m : {16, 64, 256}) {
    SimOptions lru;
    lru.cache_size = m;
    lru.replacement = ReplacementPolicy::kLru;
    SimOptions opt = lru;
    opt.replacement = ReplacementPolicy::kBelady;
    // Belady optimizes hits; with write-backs the totals can differ
    // slightly, so compare loads (misses).
    EXPECT_LE(simulate(cdag, schedule, opt).loads,
              simulate(cdag, schedule, lru).loads)
        << "M=" << m;
  }
}

TEST(Machine, DfsBeatsBfsAtSmallCache) {
  const cdag::Cdag cdag = strassen_cdag(16);
  SimOptions options;
  options.cache_size = 32;
  const std::int64_t dfs_io = simulate(cdag, dfs_schedule(cdag), options)
                                  .total_io();
  const std::int64_t bfs_io = simulate(cdag, bfs_schedule(cdag), options)
                                  .total_io();
  EXPECT_LT(dfs_io, bfs_io);
}

TEST(Machine, IoAboveAsymptoticBound) {
  // Measured I/O of a legal schedule must sit above a constant times the
  // (n/sqrt(M))^{log2 7} * M formula; we use constant 1/8 (conservative,
  // the paper's constants are not optimized).
  const cdag::Cdag cdag = strassen_cdag(16);
  const auto schedule = dfs_schedule(cdag);
  for (const std::int64_t m : {16, 64}) {
    SimOptions options;
    options.cache_size = m;
    const SimResult result = simulate(cdag, schedule, options);
    const double bound = bounds::fast_memory_dependent(
        {16.0, static_cast<double>(m), 1.0}, kOmega0);
    EXPECT_GE(static_cast<double>(result.total_io()), bound / 8.0)
        << "M=" << m;
  }
}

TEST(Machine, SummaryTracksIoMonotonically) {
  const cdag::Cdag cdag = strassen_cdag(4);
  SimOptions options;
  options.cache_size = 8;
  const SimResult result = simulate(cdag, dfs_schedule(cdag), options);
  ASSERT_EQ(result.summary.compute_order.size(),
            result.summary.io_before.size());
  for (std::size_t i = 1; i < result.summary.io_before.size(); ++i) {
    EXPECT_LE(result.summary.io_before[i - 1], result.summary.io_before[i]);
  }
  EXPECT_EQ(result.summary.total_io, result.total_io());
}

TEST(Machine, WeightedIoRespectsCosts) {
  const cdag::Cdag cdag = strassen_cdag(4);
  SimOptions options;
  options.cache_size = 16;
  options.read_cost = 1;
  options.write_cost = 5;  // NVM-style asymmetric writes
  const SimResult result = simulate(cdag, dfs_schedule(cdag), options);
  EXPECT_EQ(result.weighted_io, result.loads + 5 * result.stores);
  EXPECT_GT(result.weighted_io, result.total_io());
}

TEST(Machine, TooSmallCacheThrows) {
  const cdag::Cdag cdag = strassen_cdag(2);
  SimOptions options;
  options.cache_size = 1;
  EXPECT_THROW(simulate(cdag, dfs_schedule(cdag), options), CheckError);
}

TEST(Machine, MissingOutputDetected) {
  const cdag::Cdag cdag = strassen_cdag(2);
  auto schedule = dfs_schedule(cdag);
  schedule.pop_back();  // drop the last output computation
  SimOptions options;
  options.cache_size = 100;
  EXPECT_THROW(simulate(cdag, schedule, options), CheckError);
}

TEST(Machine, DroppedIntermediateWithoutRecomputeIsIllegal) {
  // With kDropIntermediates and a small cache, a plain DFS schedule that
  // reuses a dropped value must be detected as illegal.
  const cdag::Cdag cdag = strassen_cdag(8);
  SimOptions options;
  options.cache_size = 8;
  options.writeback = WritebackPolicy::kDropIntermediates;
  EXPECT_THROW(simulate(cdag, dfs_schedule(cdag), options), CheckError);
}

TEST(Recompute, ProducesLegalReplayableSchedule) {
  const cdag::Cdag cdag = strassen_cdag(4);
  SimOptions options;
  options.cache_size = 16;
  options.writeback = WritebackPolicy::kDropRecomputable;
  const SimResult dynamic =
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options);
  EXPECT_GT(dynamic.computations, 0);
  // Replaying the effective schedule through the static simulator with
  // identical options must succeed and yield identical I/O.
  const SimResult replay =
      simulate(cdag, dynamic.summary.compute_order, options);
  EXPECT_EQ(replay.loads, dynamic.loads);
  EXPECT_EQ(replay.stores, dynamic.stores);
}

TEST(Recompute, NoRecomputationWithBigCache) {
  const cdag::Cdag cdag = strassen_cdag(4);
  SimOptions options;
  options.cache_size = 1 << 16;
  options.writeback = WritebackPolicy::kDropIntermediates;
  const SimResult result =
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options);
  EXPECT_EQ(result.recomputations, 0);
  EXPECT_EQ(result.total_io(), trivial_io_floor(cdag));
}

TEST(Recompute, SmallCacheTriggersRecomputation) {
  const cdag::Cdag cdag = strassen_cdag(8);
  SimOptions options;
  options.cache_size = 24;
  options.writeback = WritebackPolicy::kDropRecomputable;
  const SimResult result =
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options);
  EXPECT_GT(result.recomputations, 0);
}

TEST(Recompute, AllDropRegimeNeedsOmegaN2Memory) {
  // With NO intermediate stores, the live frontier of the recursion is
  // Θ(n^2); smaller fast memory livelocks, and the runner detects it.
  const cdag::Cdag cdag = strassen_cdag(8);
  SimOptions options;
  options.cache_size = 24;  // << 2 n^2 = 128
  options.writeback = WritebackPolicy::kDropIntermediates;
  EXPECT_THROW(
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options),
      CheckError);
  // With M ~ 6 n^2 the same regime completes and recomputes.
  options.cache_size = 6 * 64;
  const SimResult result =
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options);
  EXPECT_GT(result.recomputations, 0);
}

TEST(Recompute, IoStillAboveBound) {
  // The paper's headline: recomputation cannot push I/O below
  // Ω((n/sqrt(M))^{log2 7} M).
  const cdag::Cdag cdag = strassen_cdag(8);
  for (const std::int64_t m : {24, 48, 96}) {
    SimOptions options;
    options.cache_size = m;
    options.writeback = WritebackPolicy::kDropRecomputable;
    const SimResult result =
        simulate_with_recomputation(cdag, dfs_schedule(cdag), options);
    const double bound = bounds::fast_memory_dependent(
        {8.0, static_cast<double>(m), 1.0}, kOmega0);
    EXPECT_GE(static_cast<double>(result.total_io()), bound / 8.0)
        << "M=" << m;
  }
}

TEST(Recompute, RequiresLruAndDrop) {
  const cdag::Cdag cdag = strassen_cdag(2);
  SimOptions options;
  options.cache_size = 16;
  options.writeback = WritebackPolicy::kDropIntermediates;
  options.replacement = ReplacementPolicy::kBelady;
  EXPECT_THROW(
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options),
      CheckError);
  options.replacement = ReplacementPolicy::kLru;
  options.writeback = WritebackPolicy::kWritebackLive;
  EXPECT_THROW(
      simulate_with_recomputation(cdag, dfs_schedule(cdag), options),
      CheckError);
}

TEST(Machine, RandomSchedulesAreLegalAndBounded) {
  const cdag::Cdag cdag = strassen_cdag(4);
  Rng rng(909);
  SimOptions options;
  options.cache_size = 32;
  for (int trial = 0; trial < 5; ++trial) {
    const auto schedule = random_topological_schedule(cdag, rng);
    const SimResult result = simulate(cdag, schedule, options);
    EXPECT_GE(result.total_io(), trivial_io_floor(cdag));
  }
}

}  // namespace
}  // namespace fmm::pebble
