// Fabric battery: rendezvous routing stability, the chaos-certified
// byte-identity gate (router + 4 workers with injected kills and
// response drops vs a single-process QueryService), backpressure with
// worker provenance, graceful degradation when the respawn budget is
// exhausted, and the extra.fabric accounting invariants.  The Fabric*
// suites run under the tsan preset (CMakePresets.json test filter) —
// the kill/requeue/respawn path is exercised with dispatcher threads,
// an emitter thread and chaos racing for real.
#include <gtest/gtest.h>

#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fabric/chaos.hpp"
#include "fabric/router.hpp"
#include "fabric/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "service/service.hpp"

namespace fmm::fabric {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

/// Byte-identity is modulo the id echo (the router does not renumber,
/// but chaos tests compare runs fed with different id schemes).
std::string strip_ids(const std::string& text) {
  static const std::regex id_pattern("\"id\": (null|-?[0-9]+)");
  return std::regex_replace(text, id_pattern, "\"id\": X");
}

/// The Q-mix the chaos gate replays: enough distinct compute requests
/// to spread over 4 workers, plus control ops the router answers
/// locally.
std::vector<std::string> chaos_mix() {
  std::vector<std::string> lines = {
      R"({"op": "ping"})",
      R"({"op": "bound", "n": 32, "m": 64})",
      R"({"op": "simulate", "algorithm": "strassen", "n": 16, "m": 32})",
      R"({"op": "liveness", "algorithm": "winograd", "n": 16})",
      R"({"op": "simulate", "algorithm": "winograd", "n": 16, "m": 64})",
      R"({"op": "cdag", "algorithm": "strassen", "n": 32})",
      R"({"op": "bound", "n": 64, "m": 128})",
      R"({"op": "simulate", "algorithm": "strassen", "n": 32, "m": 64})",
      R"({"op": "version"})",
      R"({"op": "cdag", "algorithm": "winograd", "n": 16})",
      R"({"op": "simulate", "algorithm": "winograd", "n": 32, "m": 128})",
      R"({"op": "bound", "n": 16, "m": 32})",
  };
  return lines;
}

std::string joined(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

std::string single_process_output(const std::vector<std::string>& lines) {
  obs::Registry::instance().reset();
  service::ServiceConfig config;
  config.num_threads = 2;
  service::QueryService service(config);
  std::istringstream in(joined(lines));
  std::ostringstream out;
  service.serve(in, out);
  return out.str();
}

// --- Rendezvous routing ----------------------------------------------

TEST(FabricRouting, RendezvousIsDeterministic) {
  const std::vector<bool> alive(4, true);
  const std::size_t first = Router::pick_worker("some canonical", alive);
  EXPECT_EQ(first, Router::pick_worker("some canonical", alive));
  EXPECT_LT(first, alive.size());
}

TEST(FabricRouting, RendezvousOnlyRemapsVictimsOfADeath) {
  // Minimal disruption: keys not owned by the dead worker keep their
  // assignment — the property that makes respawn/requeue cheap.
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("canonical request #" + std::to_string(i));
  }
  const std::vector<bool> all(4, true);
  std::vector<bool> without2(4, true);
  without2[2] = false;
  for (const std::string& key : keys) {
    const std::size_t before = Router::pick_worker(key, all);
    const std::size_t after = Router::pick_worker(key, without2);
    EXPECT_NE(after, 2u);
    if (before != 2) {
      EXPECT_EQ(before, after) << key;
    }
  }
}

TEST(FabricRouting, RendezvousSpreadsLoad) {
  const std::vector<bool> alive(4, true);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 256; ++i) {
    ++counts[Router::pick_worker("key " + std::to_string(i), alive)];
  }
  EXPECT_EQ(counts.size(), 4u);  // every worker owns some keys
}

TEST(FabricRouting, NoAliveWorkersIsAContractViolation) {
  EXPECT_THROW(Router::pick_worker("x", std::vector<bool>(3, false)),
               CheckError);
}

// --- Chaos validation ------------------------------------------------

TEST(FabricChaos, SpecValidation) {
  ChaosSpec bad;
  bad.drop_response_rate = 1.0;
  EXPECT_THROW(validate(bad), CheckError);
  bad.drop_response_rate = -0.1;
  EXPECT_THROW(validate(bad), CheckError);
  ChaosSpec ok;
  ok.drop_response_rate = 0.5;
  ok.kills.push_back({1, 3});
  validate(ok);
}

TEST(FabricChaos, KillsFireExactlyOnce) {
  ChaosSpec spec;
  spec.kills.push_back({1, 2});
  ChaosEngine engine(spec);
  EXPECT_FALSE(engine.should_kill(1, 0));
  EXPECT_FALSE(engine.should_kill(1, 1));
  EXPECT_FALSE(engine.should_kill(0, 5));  // wrong worker
  EXPECT_TRUE(engine.should_kill(1, 2));
  EXPECT_FALSE(engine.should_kill(1, 3));  // already fired
  EXPECT_EQ(engine.kills_fired(), 1);
}

TEST(FabricChaos, DropDecisionsAreSeeded) {
  ChaosSpec spec;
  spec.seed = 42;
  spec.drop_response_rate = 0.5;
  ChaosEngine a(spec);
  ChaosEngine b(spec);
  int drops = 0;
  for (std::uint64_t seq = 0; seq < 128; ++seq) {
    EXPECT_EQ(a.should_drop_response(seq, 1),
              b.should_drop_response(seq, 1));
    drops += a.should_drop_response(seq, 1) ? 1 : 0;
  }
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 128);
}

// --- The chaos gate --------------------------------------------------

// Router + 4 workers with an injected mid-run kill AND seeded response
// drops must produce output byte-identical (after id strip) to a
// single-process QueryService, with every request answered exactly
// once and the kill/requeue/respawn path demonstrably exercised.
TEST(FabricChaosGate, ByteIdenticalUnderKillsAndDrops) {
  const std::vector<std::string> mix = chaos_mix();
  const std::string expected = strip_ids(single_process_output(mix));

  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);

  FabricConfig config;
  config.num_workers = 4;
  config.chaos.seed = 7;
  config.chaos.drop_response_rate = 0.2;
  // Fire on every worker's very first send: at least one kill is
  // guaranteed regardless of how rendezvous spreads this mix.
  config.chaos.kills.push_back({0, 0});
  config.chaos.kills.push_back({2, 0});
  // Drops consume attempts too; leave plenty of budget so the gate
  // never gives up (gave_up must be 0 for byte-identity).
  config.retry.max_attempts = 6;

  Router router(config, transport);
  std::istringstream in(joined(mix));
  std::ostringstream out;
  EXPECT_FALSE(router.serve(in, out));

  EXPECT_EQ(strip_ids(out.str()), expected);
  EXPECT_EQ(lines_of(out.str()).size(), mix.size());

  const FabricStats stats = router.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(mix.size()));
  EXPECT_EQ(stats.responded, stats.requests);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.gave_up, 0);
  EXPECT_EQ(stats.unroutable, 0);
  // The chaos path actually ran: kills fired, the victims' requests
  // were requeued, and the slots came back via respawn.
  EXPECT_GE(stats.kills_injected, 1);
  EXPECT_GE(stats.requeues, 1);
  EXPECT_GE(stats.respawns, 1);
  EXPECT_EQ(stats.dead_workers, 0);
}

TEST(FabricChaosGate, ByteIdenticalWithExplicitIds) {
  // Same gate with client-chosen ids: the router must echo them back
  // on the right lines (order preserved), not merely produce the same
  // multiset of responses.
  std::vector<std::string> mix;
  const std::vector<std::string> base = chaos_mix();
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string line = base[i];
    line.insert(1, "\"id\": " + std::to_string(100 + i) + ", ");
    mix.push_back(line);
  }
  const std::string expected = single_process_output(mix);

  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);
  FabricConfig config;
  config.num_workers = 4;
  config.chaos.seed = 3;
  config.chaos.kills.push_back({1, 1});
  config.retry.max_attempts = 4;
  Router router(config, transport);
  std::istringstream in(joined(mix));
  std::ostringstream out;
  router.serve(in, out);
  EXPECT_EQ(out.str(), expected);  // ids identical, no strip needed
}

TEST(FabricChaosGate, ShutdownOpDrainsAndStops) {
  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);
  FabricConfig config;
  config.num_workers = 2;
  Router router(config, transport);
  std::istringstream in(
      "{\"op\": \"bound\", \"n\": 32, \"m\": 64}\n"
      "{\"op\": \"shutdown\"}\n"
      "{\"op\": \"ping\"}\n");  // after shutdown: never read
  std::ostringstream out;
  EXPECT_TRUE(router.serve(in, out));
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"draining\": true"), std::string::npos);
}

// --- Backpressure ----------------------------------------------------

TEST(FabricBackpressure, ShedsWithWorkerProvenance) {
  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);
  FabricConfig config;
  config.num_workers = 1;  // one slot, so depth is the only admission
  config.worker_queue_depth = 1;
  Router router(config, transport);
  // Burst of slow-ish compute requests at depth 1: some must shed.
  std::string input;
  for (int i = 0; i < 24; ++i) {
    input += R"({"op": "simulate", "algorithm": "strassen", "n": 32, "m": )" +
             std::to_string(32 + i) + "}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  router.serve(in, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 24u);
  const FabricStats stats = router.stats();
  EXPECT_EQ(stats.responded, 24);
  EXPECT_GT(stats.rejected_queue_full, 0);
  bool saw_provenance = false;
  for (const std::string& line : lines) {
    if (line.find("rejected: queue_full (worker 0, depth 1)") !=
        std::string::npos) {
      saw_provenance = true;
    }
  }
  EXPECT_TRUE(saw_provenance);
}

// --- Graceful degradation --------------------------------------------

TEST(FabricDegradation, ZeroRespawnBudgetDegradesToSurvivors) {
  const std::vector<std::string> mix = chaos_mix();
  const std::string expected = strip_ids(single_process_output(mix));

  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);
  FabricConfig config;
  config.num_workers = 4;
  config.max_respawns = 0;  // any death is permanent
  config.chaos.kills.push_back({3, 0});
  config.retry.max_attempts = 4;
  Router router(config, transport);
  std::istringstream in(joined(mix));
  std::ostringstream out;
  router.serve(in, out);

  // Worker 3 died for good; the survivors still answered everything
  // byte-identically.
  EXPECT_EQ(strip_ids(out.str()), expected);
  const FabricStats stats = router.stats();
  EXPECT_EQ(stats.dead_workers, 1);
  EXPECT_EQ(stats.respawns, 0);
  EXPECT_EQ(stats.gave_up, 0);
  const std::vector<WorkerTally> tallies = router.worker_tallies();
  ASSERT_EQ(tallies.size(), 4u);
  EXPECT_FALSE(tallies[3].alive);
}

// --- Accounting ------------------------------------------------------

TEST(FabricAccounting, TalliesBalanceAndReportEmbeds) {
  const std::vector<std::string> mix = chaos_mix();
  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);
  FabricConfig config;
  config.num_workers = 4;
  config.chaos.seed = 11;
  config.chaos.drop_response_rate = 0.25;
  config.chaos.kills.push_back({0, 1});
  config.retry.max_attempts = 6;
  Router router(config, transport);
  std::istringstream in(joined(mix));
  std::ostringstream out;
  router.serve(in, out);

  const FabricStats stats = router.stats();
  const std::vector<WorkerTally> tallies = router.worker_tallies();
  std::int64_t dispatched = 0;
  std::int64_t completed = 0;
  std::int64_t requeued = 0;
  std::int64_t gave_up_rows = 0;
  std::int64_t respawns = 0;
  for (const WorkerTally& tally : tallies) {
    EXPECT_EQ(tally.dispatched,
              tally.completed + tally.requeued + tally.gave_up);
    dispatched += tally.dispatched;
    completed += tally.completed;
    requeued += tally.requeued;
    gave_up_rows += tally.gave_up;
    respawns += tally.respawns;
  }
  EXPECT_EQ(stats.requests, stats.responded);
  EXPECT_EQ(stats.routed + stats.local, stats.responded);
  EXPECT_EQ(stats.ok + stats.errors, stats.responded);
  EXPECT_EQ(completed + gave_up_rows + stats.unroutable, stats.routed);
  EXPECT_EQ(stats.requeues, requeued);
  EXPECT_EQ(stats.respawns, respawns);
  EXPECT_EQ(stats.gave_up, gave_up_rows + stats.unroutable);
  EXPECT_LE(stats.requeues,
            stats.routed * (config.retry.max_attempts - 1));

  // The report section embeds and the registry gauges were finalized.
  obs::RunReport report("fabric-test");
  router.attach_to(report);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"fabric\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"fmm.fabric\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\": ["), std::string::npos);
}

TEST(FabricAccounting, RouterIsSingleShot) {
  obs::Registry::instance().reset();
  service::ServiceConfig worker_config;
  worker_config.num_threads = 1;
  InProcessTransport transport(worker_config);
  Router router(FabricConfig{}, transport);
  std::istringstream in1("{\"op\": \"ping\"}\n");
  std::ostringstream out1;
  router.serve(in1, out1);
  std::istringstream in2("{\"op\": \"ping\"}\n");
  std::ostringstream out2;
  EXPECT_THROW(router.serve(in2, out2), CheckError);
}

}  // namespace
}  // namespace fmm::fabric
