// Property-style sweeps across the full algorithm orbit and randomized
// workloads — broad invariants rather than targeted unit checks.
#include <gtest/gtest.h>

#include "altbasis/alt_basis.hpp"
#include "bilinear/catalog.hpp"
#include "bilinear/executor.hpp"
#include "bounds/encoder_lemmas.hpp"
#include "bounds/formulas.hpp"
#include "cdag/builder.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "linalg/matmul.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"
#include "sweep/sweep.hpp"

namespace fmm {
namespace {

// ------------------------------------------------------------------
// The whole symmetry orbit (32 structurally distinct 7-mult algorithms).
// ------------------------------------------------------------------

TEST(Orbit, SizeAndShape) {
  const auto orbit = bilinear::fast_2x2_orbit();
  EXPECT_EQ(orbit.size(), 32u);
  for (const auto& alg : orbit) {
    EXPECT_TRUE(alg.is_square());
    EXPECT_EQ(alg.num_products(), 7u);
  }
}

class OrbitProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrbitProperty, BrentValidAndLemmasHold) {
  const auto orbit = bilinear::fast_2x2_orbit();
  const bilinear::BilinearAlgorithm& alg = orbit[GetParam()];
  ASSERT_TRUE(alg.is_valid()) << alg.name();
  // Paper's encoder lemmas quantify over this entire family.
  EXPECT_TRUE(bounds::certify_encoder(alg, bilinear::Side::kA).all_pass())
      << alg.name();
  EXPECT_TRUE(bounds::certify_encoder(alg, bilinear::Side::kB).all_pass())
      << alg.name();
  EXPECT_TRUE(bounds::certify_hopcroft_kerr(alg).pass) << alg.name();
}

TEST_P(OrbitProperty, ExecutorMatchesOracle) {
  const auto orbit = bilinear::fast_2x2_orbit();
  const bilinear::BilinearAlgorithm& alg = orbit[GetParam()];
  bilinear::RecursiveExecutor executor(alg);
  linalg::Mat a(8, 8), b(8, 8);
  linalg::fill_random(a, 3000 + GetParam());
  linalg::fill_random(b, 4000 + GetParam());
  EXPECT_LT(linalg::max_abs_diff(executor.multiply(a, b),
                                 linalg::multiply_naive(a, b)),
            1e-9)
      << alg.name();
}

TEST_P(OrbitProperty, AlternativeBasisExists) {
  const auto orbit = bilinear::fast_2x2_orbit();
  const bilinear::BilinearAlgorithm& alg = orbit[GetParam()];
  const auto ab = altbasis::make_alternative_basis(alg);
  EXPECT_TRUE(ab.is_twisted_valid(alg)) << alg.name();
  // 12 is the Karstadt–Schwartz optimum for <2,2,2;7>; the search can
  // never beat it and must always reach the naive count or better.
  EXPECT_GE(ab.base_linear_ops, 12u) << alg.name();
  EXPECT_LE(ab.base_linear_ops, alg.base_linear_ops()) << alg.name();
}

INSTANTIATE_TEST_SUITE_P(All32, OrbitProperty,
                         ::testing::Range<std::size_t>(0, 32));

// ------------------------------------------------------------------
// Randomized numerical properties of the executors.
// ------------------------------------------------------------------

TEST(RandomizedExec, PaddedMultiplyArbitraryShapes) {
  Rng rng(606);
  bilinear::RecursiveExecutor executor(bilinear::winograd());
  for (int trial = 0; trial < 20; ++trial) {
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto inner = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 17));
    linalg::Mat a(rows, inner), b(inner, cols);
    linalg::fill_random(a, 100 + trial);
    linalg::fill_random(b, 200 + trial);
    EXPECT_LT(linalg::max_abs_diff(executor.multiply_padded(a, b),
                                   linalg::multiply_naive(a, b)),
              1e-9)
        << rows << "x" << inner << "x" << cols;
  }
}

TEST(RandomizedExec, AssociativityAcrossAlgorithms) {
  // (A*B)*C computed with Strassen equals A*(B*C) computed with Winograd.
  const std::size_t n = 16;
  linalg::Mat a(n, n), b(n, n), c(n, n);
  linalg::fill_random(a, 1);
  linalg::fill_random(b, 2);
  linalg::fill_random(c, 3);
  bilinear::RecursiveExecutor strassen_exec(bilinear::strassen());
  bilinear::RecursiveExecutor winograd_exec(bilinear::winograd());
  const linalg::Mat left =
      strassen_exec.multiply(strassen_exec.multiply(a, b), c);
  const linalg::Mat right =
      winograd_exec.multiply(a, winograd_exec.multiply(b, c));
  EXPECT_LT(linalg::max_abs_diff(left, right), 1e-7);
}

TEST(RandomizedExec, LinearityInFirstArgument) {
  // (A1 + A2) * B == A1*B + A2*B — bilinearity of the implementation.
  const std::size_t n = 8;
  linalg::Mat a1(n, n), a2(n, n), b(n, n);
  linalg::fill_random(a1, 10);
  linalg::fill_random(a2, 11);
  linalg::fill_random(b, 12);
  linalg::Mat sum(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sum(i, j) = a1(i, j) + a2(i, j);
    }
  }
  bilinear::RecursiveExecutor executor(bilinear::strassen());
  const linalg::Mat lhs = executor.multiply(sum, b);
  const linalg::Mat c1 = executor.multiply(a1, b);
  const linalg::Mat c2 = executor.multiply(a2, b);
  double worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      worst = std::max(worst, std::abs(lhs(i, j) - c1(i, j) - c2(i, j)));
    }
  }
  EXPECT_LT(worst, 1e-10);
}

// ------------------------------------------------------------------
// Machine invariants over random schedules and policies.
// ------------------------------------------------------------------

struct MachineSweepCase {
  std::size_t n;
  std::int64_t m;
  pebble::ReplacementPolicy policy;
};

class MachineSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::int64_t,
                                                 int>> {};

TEST_P(MachineSweep, InvariantsHold) {
  const auto [n, m, policy_index] = GetParam();
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), n);
  Rng rng(n * 1000 + static_cast<std::uint64_t>(m));
  pebble::SimOptions options;
  options.cache_size = m;
  options.replacement = policy_index == 0
                            ? pebble::ReplacementPolicy::kLru
                            : pebble::ReplacementPolicy::kBelady;
  const auto schedule = pebble::random_topological_schedule(cdag, rng);
  const auto result = pebble::simulate(cdag, schedule, options);

  // Invariant 1: never below the trivial floor.
  EXPECT_GE(result.total_io(), pebble::trivial_io_floor(cdag));
  // Invariant 2: every input is loaded at least once -> loads >= 2n^2.
  EXPECT_GE(result.loads, static_cast<std::int64_t>(2 * n * n));
  // Invariant 3: every output is stored at least once.
  EXPECT_GE(result.stores, static_cast<std::int64_t>(n * n));
  // Invariant 4: no recomputation in a once-per-vertex schedule.
  EXPECT_EQ(result.recomputations, 0);
  // Invariant 5: the bound of Theorem 1.1 (generous constant for
  // adversarial random schedules).
  const double bound = bounds::fast_memory_dependent(
      {static_cast<double>(n), static_cast<double>(m), 1}, kOmega0);
  EXPECT_GE(static_cast<double>(result.total_io()), bound / 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSchedules, MachineSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 8),
                       ::testing::Values<std::int64_t>(9, 16, 64),
                       ::testing::Values(0, 1)));

// ------------------------------------------------------------------
// Recomputation-regime invariants across cache sizes.
// ------------------------------------------------------------------

class RematSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RematSweep, ReplayConsistencyAndBound) {
  const std::int64_t m = GetParam();
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::winograd(), 8);
  pebble::SimOptions options;
  options.cache_size = m;
  options.writeback = pebble::WritebackPolicy::kDropRecomputable;
  const auto dynamic = pebble::simulate_with_recomputation(
      cdag, pebble::dfs_schedule(cdag), options);
  // Replay determinism: static re-execution reproduces the exact I/O.
  const auto replay =
      pebble::simulate(cdag, dynamic.summary.compute_order, options);
  EXPECT_EQ(replay.loads, dynamic.loads) << "M=" << m;
  EXPECT_EQ(replay.stores, dynamic.stores) << "M=" << m;
  EXPECT_EQ(replay.recomputations, dynamic.recomputations) << "M=" << m;
  // Bound.
  const double bound = bounds::fast_memory_dependent(
      {8.0, static_cast<double>(m), 1}, kOmega0);
  EXPECT_GE(static_cast<double>(dynamic.total_io()), bound / 8.0);
}

// M = 12 is below this regime's feasibility threshold for n = 8 (a
// decode vertex with 7 rematerializable operands thrashes) — start at 16.
INSTANTIATE_TEST_SUITE_P(CacheSizes, RematSweep,
                         ::testing::Values<std::int64_t>(16, 24, 48, 96));

// ------------------------------------------------------------------
// Degenerate grids routed through the sweep engine.
// ------------------------------------------------------------------

TEST(DegenerateGrid, EmptyGridYieldsEmptyValidReport) {
  sweep::SweepSpec spec;  // all grids empty
  const sweep::SweepResult result = sweep::run_sweep(spec);
  EXPECT_EQ(result.num_tasks, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_TRUE(result.all_bounds_hold);
  EXPECT_NE(result.to_json().find("\"tasks\": []"), std::string::npos);

  // One empty axis is enough to empty the cross product.
  spec.algorithms = {"strassen"};
  spec.n_grid = {4, 8};
  spec.m_grid = {};
  EXPECT_EQ(sweep::run_sweep(spec).num_tasks, 0u);
}

TEST(DegenerateGrid, SingleCellMatchesDirectSimulation) {
  sweep::SweepSpec spec;
  spec.algorithms = {"winograd"};
  spec.n_grid = {8};
  spec.m_grid = {24};
  spec.kinds = {sweep::TaskKind::kSimulate};
  const sweep::SweepResult result = sweep::run_sweep(spec);
  ASSERT_EQ(result.num_tasks, 1u);
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::winograd(), 8);
  pebble::SimOptions options;
  options.cache_size = 24;
  const auto direct =
      pebble::simulate(cdag, pebble::dfs_schedule(cdag), options);
  EXPECT_EQ(result.tasks[0].total_io, direct.total_io());
  EXPECT_EQ(result.aggregate_total_io, direct.total_io());
}

TEST(DegenerateGrid, BaseCaseN1SimulatesAndSkipsDominator) {
  // H^{1x1} is the recursion base case: 2 inputs, one product vertex.
  // Simulation and liveness work; the r=2 dominator level does not exist
  // and must be skipped, not failed.
  sweep::SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {1};
  spec.m_grid = {4};
  spec.kinds = {sweep::TaskKind::kSimulate, sweep::TaskKind::kLiveness,
                sweep::TaskKind::kDominator};
  const sweep::SweepResult result = sweep::run_sweep(spec);
  ASSERT_EQ(result.num_tasks, 3u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.skipped, 1u);
  // 2 loads (the scalar inputs) + 1 store (the scalar output).
  EXPECT_EQ(result.tasks[0].total_io, 3);
  EXPECT_TRUE(result.tasks[2].skipped);
}

TEST(DegenerateGrid, CacheLargerThanWholeCdagHitsTrivialFloor) {
  // M beyond the vertex count ⇒ nothing is ever evicted: I/O collapses
  // to the trivial floor (2n² compulsory loads + n² output stores).
  const std::size_t n = 8;
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), n);
  sweep::SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {n};
  spec.m_grid = {
      static_cast<std::int64_t>(cdag.graph.num_vertices()) + 10};
  spec.kinds = {sweep::TaskKind::kSimulate, sweep::TaskKind::kLiveness};
  const sweep::SweepResult result = sweep::run_sweep(spec);
  ASSERT_EQ(result.num_tasks, 2u);
  EXPECT_EQ(result.tasks[0].total_io, pebble::trivial_io_floor(cdag));
  // Zero-spill requirement is certainly below such an M.
  EXPECT_LT(result.tasks[1].liveness_peak, spec.m_grid[0]);
}

}  // namespace
}  // namespace fmm
