// Tests for the block-bordering combinator (<b,b,b;t> -> <b+1,b+1,b+1;
// t + 3b^2 + 3b + 1>) and the resulting base-3 recursion: a fast 3x3
// algorithm with 26 < 27 products, run through every layer of the
// library (executor, CDAG, pebble machine, bounds).
#include <gtest/gtest.h>

#include <cmath>

#include "bilinear/catalog.hpp"
#include "bilinear/executor.hpp"
#include "bounds/formulas.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "linalg/matmul.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"

namespace fmm::bilinear {
namespace {

TEST(Bordered, ShapeAndCount) {
  const BilinearAlgorithm alg = strassen_bordered_3x3();
  EXPECT_EQ(alg.n(), 3u);
  EXPECT_EQ(alg.m(), 3u);
  EXPECT_EQ(alg.p(), 3u);
  EXPECT_EQ(alg.num_products(), 26u);  // 7 + 3*4 + 3*2 + 1
}

TEST(Bordered, BrentValid) {
  const auto violation = strassen_bordered_3x3().first_brent_violation();
  EXPECT_FALSE(violation.has_value()) << violation.value_or("");
}

TEST(Bordered, BeatsClassicalExponent) {
  const BilinearAlgorithm alg = strassen_bordered_3x3();
  EXPECT_LT(alg.omega(), 3.0);
  EXPECT_NEAR(alg.omega(), std::log(26.0) / std::log(3.0), 1e-12);
}

TEST(Bordered, WinogradBorderAlsoValid) {
  const BilinearAlgorithm alg = border_one(winograd());
  EXPECT_EQ(alg.num_products(), 26u);
  EXPECT_TRUE(alg.is_valid());
}

TEST(Bordered, DoubleBorderGives4x4) {
  // <3,3,3;26> -> <4,4,4; 26 + 27 + 9 + 1 = 63> (worse than 49 but valid).
  const BilinearAlgorithm alg = border_one(strassen_bordered_3x3());
  EXPECT_EQ(alg.n(), 4u);
  EXPECT_EQ(alg.num_products(), 63u);
  EXPECT_TRUE(alg.is_valid());
}

TEST(Bordered, BorderRequiresSquare) {
  EXPECT_THROW(border_one(rect_2x2x4()), CheckError);
}

TEST(Bordered, ExecutorMatchesOracleBase3) {
  const BilinearAlgorithm alg = strassen_bordered_3x3();
  RecursiveExecutor executor(alg);
  for (const std::size_t n : {3u, 9u, 27u}) {
    linalg::Mat a(n, n), b(n, n);
    linalg::fill_random(a, n);
    linalg::fill_random(b, n + 1);
    EXPECT_LT(linalg::max_abs_diff(executor.multiply(a, b),
                                   linalg::multiply_naive(a, b)),
              1e-8)
        << "n=" << n;
  }
}

TEST(Bordered, MultiplicationCountIs26PowK) {
  RecursiveExecutor executor(strassen_bordered_3x3());
  EXPECT_EQ(executor.predicted_count(3).multiplications, 26);
  EXPECT_EQ(executor.predicted_count(9).multiplications, 26 * 26);
  EXPECT_EQ(executor.predicted_count(27).multiplications, 26 * 26 * 26);
}

TEST(Bordered, FewerMultsThanClassicAtScale) {
  RecursiveExecutor fast(strassen_bordered_3x3());
  // Classical 27^k multiplications vs 26^k.
  EXPECT_LT(fast.predicted_count(27).multiplications, 27ll * 27 * 27);
}

TEST(Bordered, CdagConstructionBase3) {
  const cdag::Cdag cdag = cdag::build_cdag(strassen_bordered_3x3(), 9);
  cdag.validate();
  EXPECT_EQ(cdag.inputs_a.size(), 81u);
  EXPECT_EQ(cdag.role_histogram().at(cdag::Role::kProduct), 26u * 26u);
  // Lemma 2.2 with base 3, t = 26: (9/3)^{log3 26} * 9 = 26 * 9.
  EXPECT_EQ(cdag.sub_outputs_flat(3).size(), 26u * 9u);
}

TEST(Bordered, PebbleSimulationRespectsBound) {
  const cdag::Cdag cdag = cdag::build_cdag(strassen_bordered_3x3(), 9);
  pebble::SimOptions options;
  options.cache_size = 32;
  const auto result =
      pebble::simulate(cdag, pebble::dfs_schedule(cdag), options);
  EXPECT_GE(result.total_io(), pebble::trivial_io_floor(cdag));
  const double bound = bounds::fast_memory_dependent(
      {9.0, 32.0, 1.0}, strassen_bordered_3x3().omega());
  EXPECT_GE(static_cast<double>(result.total_io()), bound / 8.0);
}

TEST(Bordered, TensorWithSelf) {
  // <3,3,3;26> (x) <2,2,2;7> = <6,6,6;182>: still Brent-valid.
  const BilinearAlgorithm t =
      BilinearAlgorithm::tensor(strassen_bordered_3x3(), strassen());
  EXPECT_EQ(t.n(), 6u);
  EXPECT_EQ(t.num_products(), 182u);
  EXPECT_TRUE(t.is_valid());
}

}  // namespace
}  // namespace fmm::bilinear
