// Unit tests for Dinic max-flow and vertex-cut (dominator) computation.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/maxflow.hpp"
#include "graph/vertex_cut.hpp"

namespace fmm::graph {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.add_edge(0, 1, 5);
  EXPECT_EQ(f.run(0, 1), 5);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow f(3);
  f.add_edge(0, 1, 5);
  f.add_edge(1, 2, 3);
  EXPECT_EQ(f.run(0, 2), 3);
}

TEST(MaxFlow, ParallelPaths) {
  MaxFlow f(4);
  f.add_edge(0, 1, 2);
  f.add_edge(1, 3, 2);
  f.add_edge(0, 2, 3);
  f.add_edge(2, 3, 3);
  EXPECT_EQ(f.run(0, 3), 5);
}

TEST(MaxFlow, ClassicNetwork) {
  // A standard 6-node example with max flow 23.
  MaxFlow f(6);
  f.add_edge(0, 1, 16);
  f.add_edge(0, 2, 13);
  f.add_edge(1, 2, 10);
  f.add_edge(2, 1, 4);
  f.add_edge(1, 3, 12);
  f.add_edge(3, 2, 9);
  f.add_edge(2, 4, 14);
  f.add_edge(4, 3, 7);
  f.add_edge(3, 5, 20);
  f.add_edge(4, 5, 4);
  EXPECT_EQ(f.run(0, 5), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 10);
  f.add_edge(2, 3, 10);
  EXPECT_EQ(f.run(0, 3), 0);
}

TEST(MaxFlow, FlowOnEdges) {
  MaxFlow f(3);
  const std::size_t e01 = f.add_edge(0, 1, 4);
  const std::size_t e12 = f.add_edge(1, 2, 2);
  EXPECT_EQ(f.run(0, 2), 2);
  EXPECT_EQ(f.flow_on(e01), 2);
  EXPECT_EQ(f.flow_on(e12), 2);
  EXPECT_EQ(f.residual_on(e01), 2);
}

TEST(MaxFlow, MinCutSourceSide) {
  MaxFlow f(3);
  f.add_edge(0, 1, 1);
  f.add_edge(1, 2, 10);
  f.run(0, 2);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[1]);
  EXPECT_FALSE(side[2]);
}

TEST(MaxFlow, RunTwiceThrows) {
  MaxFlow f(2);
  f.add_edge(0, 1, 1);
  f.run(0, 1);
  EXPECT_THROW(f.run(0, 1), CheckError);
}

TEST(VertexCut, DiamondNeedsOneOrTwo) {
  // 0 -> {1,2} -> 3: cutting 0 (or 3) suffices: min vertex cut = 1.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto cut = min_vertex_cut(g, {0}, {3});
  EXPECT_EQ(cut.cut_size, 1u);
}

TEST(VertexCut, TwoDisjointPathsNeedTwo) {
  // 0->2->4, 1->3->4 with two sources; targets {4}: cutting 4 suffices.
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(min_vertex_cut(g, {0, 1}, {4}).cut_size, 1u);
  // Two separate targets -> need 2 vertices.
  Digraph h(6);
  h.add_edge(0, 2);
  h.add_edge(2, 4);
  h.add_edge(1, 3);
  h.add_edge(3, 5);
  EXPECT_EQ(min_vertex_cut(h, {0, 1}, {4, 5}).cut_size, 2u);
}

TEST(VertexCut, CutVerticesAreValidDominator) {
  Digraph g(7);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 5);
  g.add_edge(4, 5);
  g.add_edge(4, 6);
  const auto cut = min_vertex_cut(g, {0, 1}, {5, 6});
  EXPECT_EQ(cut.cut_size, 1u);  // vertex 2 dominates everything
  EXPECT_TRUE(is_dominator_set(g, {0, 1}, {5, 6}, cut.cut_vertices));
}

TEST(VertexCut, SourceEqualsTargetCostsOne) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(min_vertex_cut(g, {0}, {0}).cut_size, 1u);
}

TEST(VertexCut, MatchesBruteForceOnRandomDags) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 8;
    Digraph g(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.3)) {
          g.add_edge(u, v);
        }
      }
    }
    const std::vector<VertexId> sources{0, 1};
    const std::vector<VertexId> targets{6, 7};
    const auto fast = min_vertex_cut(g, sources, targets);
    const std::size_t brute = brute_force_min_vertex_cut(g, sources, targets);
    EXPECT_EQ(fast.cut_size, brute) << "trial " << trial;
    EXPECT_TRUE(is_dominator_set(g, sources, targets, fast.cut_vertices));
  }
}

TEST(DisjointPaths, MengerDuality) {
  Rng rng(555);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 10;
    Digraph g(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.25)) {
          g.add_edge(u, v);
        }
      }
    }
    const std::vector<VertexId> sources{0, 1, 2};
    const std::vector<VertexId> targets{7, 8, 9};
    EXPECT_EQ(max_vertex_disjoint_paths(g, sources, targets),
              min_vertex_cut(g, sources, targets).cut_size)
        << "trial " << trial;
  }
}

TEST(DisjointPaths, ForbiddenVerticesReducePaths) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  // Only one path can use vertex 4, so 1 path regardless.
  EXPECT_EQ(max_vertex_disjoint_paths(g, {0}, {4}), 1u);
  // Forbidding the middle vertices kills specific routes.
  EXPECT_EQ(max_vertex_disjoint_paths(g, {0}, {4}, {1, 2, 3}), 0u);
}

TEST(DisjointPaths, WideGraphManyPaths) {
  // k parallel 2-hop paths.
  const std::size_t k = 6;
  Digraph g(2 + 2 * k);
  std::vector<VertexId> sources, targets;
  for (std::size_t i = 0; i < k; ++i) {
    const VertexId s = static_cast<VertexId>(2 * i);
    const VertexId t = static_cast<VertexId>(2 * i + 1);
    g.add_edge(s, t);
    sources.push_back(s);
    targets.push_back(t);
  }
  EXPECT_EQ(max_vertex_disjoint_paths(g, sources, targets), k);
}

TEST(Dominator, EmptySetDominatesNothing) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_dominator_set(g, {0}, {1}, {}));
  EXPECT_TRUE(is_dominator_set(g, {0}, {1}, {0}));
  EXPECT_TRUE(is_dominator_set(g, {0}, {1}, {1}));
}

}  // namespace
}  // namespace fmm::graph
