// Tests for JSON export (CDAG) and the certification report bundle.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "bounds/report.hpp"
#include "cdag/builder.hpp"
#include "cdag/json_export.hpp"
#include "common/math_util.hpp"

namespace fmm {
namespace {

// Minimal structural JSON sanity: balanced braces/brackets and expected
// fields, without pulling in a JSON parser dependency.
void expect_balanced(const std::string& json) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(CdagJson, BaseCaseDocument) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), 2);
  const std::string json = cdag::to_json(cdag);
  expect_balanced(json);
  EXPECT_NE(json.find("\"algorithm\": \"strassen\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"mul\""), std::string::npos);
  EXPECT_NE(json.find("\"inputs_a\": [0,1,2,3]"), std::string::npos);
  // 50 edges in H^{2x2}: count "[u,v]" pairs in the edges array.
  const std::size_t edges_begin = json.find("\"edges\": [");
  const std::size_t edges_end = json.find("]", json.find("]", edges_begin) );
  EXPECT_NE(edges_begin, std::string::npos);
  EXPECT_NE(edges_end, std::string::npos);
}

TEST(CdagJson, SubproblemSections) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::winograd(), 4);
  const std::string json = cdag::to_json(cdag);
  expect_balanced(json);
  EXPECT_NE(json.find("\"subproblems\""), std::string::npos);
  EXPECT_NE(json.find("\"1\": ["), std::string::npos);
  EXPECT_NE(json.find("\"2\": ["), std::string::npos);
  EXPECT_NE(json.find("\"4\": ["), std::string::npos);
  EXPECT_NE(json.find("\"inputs\":"), std::string::npos);
}

TEST(CdagJson, GrowsWithN) {
  const auto small =
      cdag::to_json(cdag::build_cdag(bilinear::strassen(), 2));
  const auto large =
      cdag::to_json(cdag::build_cdag(bilinear::strassen(), 8));
  EXPECT_GT(large.size(), 10 * small.size());
}

TEST(Report, StrassenAllPass) {
  const auto report = bounds::certify_algorithm(bilinear::strassen());
  EXPECT_TRUE(report.brent_valid);
  EXPECT_TRUE(report.is_fast_2x2);
  EXPECT_TRUE(report.all_pass());
  EXPECT_EQ(report.base_linear_ops, 18u);
  EXPECT_EQ(report.alt_basis_linear_ops, 12u);
  EXPECT_NEAR(report.leading_coefficient, 7.0, 1e-12);
  EXPECT_NEAR(report.omega, kOmega0, 1e-12);
  EXPECT_GT(report.reference_bound, 0.0);
}

TEST(Report, WinogradValues) {
  const auto report = bounds::certify_algorithm(bilinear::winograd());
  EXPECT_TRUE(report.all_pass());
  EXPECT_EQ(report.base_linear_ops, 15u);
  EXPECT_EQ(report.alt_basis_linear_ops, 12u);
  EXPECT_NEAR(report.leading_coefficient, 6.0, 1e-12);
}

TEST(Report, ClassicIsValidButNotFast) {
  const auto report = bounds::certify_algorithm(bilinear::classic(2, 2, 2));
  EXPECT_TRUE(report.brent_valid);
  EXPECT_FALSE(report.is_fast_2x2);
  EXPECT_TRUE(report.all_pass());  // non-fast algorithms only need Brent
  EXPECT_DOUBLE_EQ(report.omega, 3.0);
}

TEST(Report, BrokenAlgorithmFails) {
  bilinear::IntMat u = bilinear::strassen().u();
  u.at(0, 0) = -u.at(0, 0);
  const bilinear::BilinearAlgorithm broken(
      "broken", 2, 2, 2, u, bilinear::strassen().v(),
      bilinear::strassen().w());
  const auto report = bounds::certify_algorithm(broken);
  EXPECT_FALSE(report.brent_valid);
  EXPECT_FALSE(report.all_pass());
}

TEST(Report, JsonRendering) {
  const auto report = bounds::certify_algorithm(bilinear::strassen());
  const std::string json = report.to_json();
  expect_balanced(json);
  EXPECT_NE(json.find("\"brent_valid\": true"), std::string::npos);
  EXPECT_NE(json.find("\"lemma31_matching_a\": true"), std::string::npos);
  EXPECT_NE(json.find("\"all_pass\": true"), std::string::npos);
  EXPECT_NE(json.find("\"alt_basis_linear_ops\": 12"), std::string::npos);
}

TEST(Report, WholeOrbitPasses) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    const auto report = bounds::certify_algorithm(alg);
    EXPECT_TRUE(report.all_pass()) << alg.name();
    EXPECT_GE(report.alt_basis_linear_ops, 12u) << alg.name();
  }
}

}  // namespace
}  // namespace fmm
