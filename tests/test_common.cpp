// Unit tests for src/common: checked math, RNG determinism, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"

namespace fmm {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    FMM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FMM_CHECK(2 + 2 == 4));
}

TEST(MathUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 62));
  EXPECT_FALSE(is_pow2((1ull << 62) + 1));
}

TEST(MathUtil, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
}

TEST(MathUtil, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(1025), 11);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(MathUtil, IpowChecked) {
  EXPECT_EQ(ipow_checked(2, 10), 1024);
  EXPECT_EQ(ipow_checked(7, 0), 1);
  EXPECT_EQ(ipow_checked(-3, 3), -27);
  EXPECT_THROW(ipow_checked(10, 40), CheckError);
}

TEST(MathUtil, MulAddOverflow) {
  EXPECT_EQ(imul_checked(1 << 20, 1 << 20), 1ll << 40);
  EXPECT_THROW(imul_checked(INT64_MAX, 2), CheckError);
  EXPECT_THROW(iadd_checked(INT64_MAX, 1), CheckError);
}

TEST(MathUtil, CheckedMulAddPow) {
  EXPECT_EQ(checked_mul(1ll << 31, 1ll << 31), 1ll << 62);
  EXPECT_EQ(checked_mul(-3, 7), -21);
  EXPECT_THROW(checked_mul(1ll << 32, 1ll << 32), CheckError);
  EXPECT_THROW(checked_mul(INT64_MIN, -1), CheckError);

  EXPECT_EQ(checked_add(INT64_MAX - 1, 1), INT64_MAX);
  EXPECT_THROW(checked_add(INT64_MAX, 1), CheckError);
  EXPECT_THROW(checked_add(INT64_MIN, -1), CheckError);

  EXPECT_EQ(checked_pow(7, 6), 117649);
  EXPECT_EQ(checked_pow(2, 62), 1ll << 62);
  EXPECT_EQ(checked_pow(123, 0), 1);
  EXPECT_THROW(checked_pow(2, 63), CheckError);
  EXPECT_THROW(checked_pow(7, 30), CheckError);
}

TEST(MathUtil, Pow7) {
  EXPECT_EQ(pow7(0), 1);
  EXPECT_EQ(pow7(3), 343);
  EXPECT_EQ(pow7(6), 117649);
  EXPECT_THROW(pow7(23), CheckError);
}

TEST(MathUtil, Omega0Value) {
  EXPECT_NEAR(kOmega0, std::log2(7.0), 1e-12);
}

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd_i64(12, 18), 6);
  EXPECT_EQ(gcd_i64(-12, 18), 6);
  EXPECT_EQ(gcd_i64(0, 7), 7);
  EXPECT_EQ(gcd_i64(0, 0), 0);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a() == b());
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.uniform(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const std::size_t s : sample) {
    EXPECT_LT(s, 20u);
  }
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
}

TEST(Rng, SampleFullSet) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(19);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, Shuffle) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), w.begin()));
}

TEST(Table, ConsoleRendering) {
  Table t({"a", "bb"});
  t.begin_row();
  t.add_cell("x");
  t.add_cell(std::int64_t{42});
  std::ostringstream oss;
  t.print_console(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("--"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  Table t({"col"});
  t.begin_row();
  t.add_cell(3.14159);
  std::ostringstream oss;
  t.print_markdown(oss);
  EXPECT_NE(oss.str().find("| col |"), std::string::npos);
  EXPECT_NE(oss.str().find("3.142"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"c"});
  t.begin_row();
  t.add_cell(std::string("a,b\"c"));
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_NE(oss.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Table, IncompleteRowThrows) {
  Table t({"a", "b"});
  t.begin_row();
  t.add_cell("only-one");
  std::ostringstream oss;
  EXPECT_THROW(t.print_console(oss), CheckError);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  t.begin_row();
  t.add_cell("1");
  EXPECT_THROW(t.add_cell("2"), CheckError);
}

TEST(Table, AddRowAtOnce) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_THROW(t.add_row({"only"}), CheckError);
}

TEST(FormatHelpers, Doubles) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(1234567.0), "1.235e+06");
  EXPECT_EQ(format_ratio(1.5), "1.50x");
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += i;
  }
  (void)sink;
  EXPECT_GE(sw.nanoseconds(), 0);
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace fmm
