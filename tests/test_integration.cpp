// End-to-end integration tests: the full Theorem 1.1 pipeline — build a
// CDAG for a fast algorithm, certify the encoder lemmas, simulate
// schedules with and without recomputation, run the segment analysis,
// and compare everything against the closed-form bounds.  One test per
// claim of the paper's abstract.
#include <gtest/gtest.h>

#include "altbasis/alt_basis.hpp"
#include "bilinear/catalog.hpp"
#include "bilinear/executor.hpp"
#include "bounds/dominator_cert.hpp"
#include "bounds/encoder_lemmas.hpp"
#include "bounds/formulas.hpp"
#include "bounds/segments.hpp"
#include "cdag/builder.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "linalg/matmul.hpp"
#include "parallel/caps.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"

namespace fmm {
namespace {

// Claim (Section III): the lower bound holds for ANY fast matrix
// multiplication algorithm with a 2x2 base case — pipeline over the
// whole catalog.
TEST(Integration, FullPipelinePerAlgorithm) {
  Rng rng(1);
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    // 1. Encoder lemmas (the paper's matching argument).
    EXPECT_TRUE(bounds::certify_encoder(alg, bilinear::Side::kA).all_pass())
        << alg.name();
    EXPECT_TRUE(bounds::certify_encoder(alg, bilinear::Side::kB).all_pass())
        << alg.name();
    EXPECT_TRUE(bounds::certify_hopcroft_kerr(alg).pass) << alg.name();

    // 2. CDAG + dominator certification (Lemma 3.7).
    const cdag::Cdag cdag = cdag::build_cdag(alg, 16);
    cdag.validate();
    const auto cert = bounds::certify_dominator_bound(
        cdag, 2, 3, bounds::ZChoice::kSingleSubproblem, rng);
    EXPECT_TRUE(cert.all_hold) << alg.name();

    // 3. Schedule simulation + segment analysis (Lemma 3.6).
    pebble::SimOptions options;
    options.cache_size = 16;
    const auto sim =
        pebble::simulate(cdag, pebble::dfs_schedule(cdag), options);
    const auto analysis =
        bounds::analyze_segments(cdag, sim.summary, options.cache_size);
    EXPECT_TRUE(analysis.all_segments_hold) << alg.name();
  }
}

// Claim (abstract): "recomputations cannot reduce communication costs"
// — the measured I/O of the maximal-recomputation schedule stays above
// the same Ω((n/√M)^{ω0} M) expression the no-recomputation schedule
// obeys.
TEST(Integration, RecomputationDoesNotBeatTheBound) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), 16);
  for (const std::int64_t m : {32, 64}) {
    pebble::SimOptions plain;
    plain.cache_size = m;
    const auto normal =
        pebble::simulate(cdag, pebble::dfs_schedule(cdag), plain);

    pebble::SimOptions remat = plain;
    remat.writeback = pebble::WritebackPolicy::kDropRecomputable;
    const auto recomputed = pebble::simulate_with_recomputation(
        cdag, pebble::dfs_schedule(cdag), remat);

    const double bound = bounds::fast_memory_dependent(
        {16.0, static_cast<double>(m), 1.0}, kOmega0);
    EXPECT_GE(static_cast<double>(normal.total_io()), bound / 8.0);
    EXPECT_GE(static_cast<double>(recomputed.total_io()), bound / 8.0)
        << "recomputation drove I/O below the bound at M=" << m;
  }
}

// Claim (Theorem 1.1, parallel): measured CAPS communication obeys
// max{memory-dependent, memory-independent}.
TEST(Integration, ParallelMaxBound) {
  const std::int64_t n = 256;
  for (const std::int64_t p : {7, 49, 343}) {
    const auto caps = parallel::simulate_caps(n, p);
    const double bound = bounds::fast_parallel_bound(
        {static_cast<double>(n),
         static_cast<double>(caps.peak_memory_words), static_cast<double>(p)},
        kOmega0);
    EXPECT_GE(static_cast<double>(caps.words_per_proc), bound / 8.0)
        << "P=" << p;
  }
}

// Claim (Section IV / Theorem 4.1): alternative-basis algorithms obey the
// same bounds; their flop savings (coefficient 5) do not change I/O
// asymptotics.  We execute the transformed algorithm's CDAG and verify
// the same segment bound.
TEST(Integration, AlternativeBasisSegmentsHold) {
  const auto ab = altbasis::make_alternative_basis(bilinear::winograd());
  // The transformed algorithm has the same CDAG *shape* machinery: build
  // its CDAG and run the pipeline (the bounds depend only on the 2x2
  // recursive structure).
  const cdag::Cdag cdag = cdag::build_cdag(ab.transformed, 16);
  cdag.validate();
  pebble::SimOptions options;
  options.cache_size = 16;
  const auto sim =
      pebble::simulate(cdag, pebble::dfs_schedule(cdag), options);
  const auto analysis =
      bounds::analyze_segments(cdag, sim.summary, options.cache_size);
  EXPECT_TRUE(analysis.all_segments_hold);
}

// Cross-validation: executor flop counts vs the closed-form fast_flops.
TEST(Integration, FlopFormulasAgreeWithExecutor) {
  for (const auto& [alg, linear_ops] :
       std::vector<std::pair<bilinear::BilinearAlgorithm, double>>{
           {bilinear::strassen(), 18.0}, {bilinear::winograd(), 15.0}}) {
    bilinear::RecursiveExecutor executor(alg);
    for (const std::size_t n : {8u, 32u, 128u}) {
      const auto predicted = executor.predicted_count(n);
      EXPECT_NEAR(static_cast<double>(predicted.total()),
                  bounds::fast_flops(static_cast<double>(n), linear_ops),
                  1e-6)
          << alg.name() << " n=" << n;
    }
  }
}

// The classic-vs-fast contrast of Table I: at equal (n, M), the classic
// algorithm's CDAG forces more I/O than Strassen's (exponent 3 vs 2.81).
TEST(Integration, ClassicCdagNeedsMoreIo) {
  const cdag::Cdag fast = cdag::build_cdag(bilinear::strassen(), 16);
  const cdag::Cdag classic = cdag::build_cdag(bilinear::classic(2, 2, 2),
                                              16);
  pebble::SimOptions options;
  options.cache_size = 16;
  const auto fast_io =
      pebble::simulate(fast, pebble::dfs_schedule(fast), options).total_io();
  const auto classic_io =
      pebble::simulate(classic, pebble::dfs_schedule(classic), options)
          .total_io();
  EXPECT_LT(fast_io, classic_io);
}

// End-to-end numerical sanity across the three algorithm tiers the paper
// discusses (coefficient 7, 6, 5): all compute the same product.
TEST(Integration, ThreeTiersSameProduct) {
  const std::size_t n = 64;
  linalg::Mat a(n, n), b(n, n);
  linalg::fill_random(a, 42);
  linalg::fill_random(b, 43);
  const linalg::Mat oracle = linalg::multiply_naive(a, b);

  bilinear::RecursiveExecutor strassen_exec(bilinear::strassen());
  bilinear::RecursiveExecutor winograd_exec(bilinear::winograd());
  altbasis::AltBasisExecutor ks_exec(bilinear::winograd());

  EXPECT_LT(linalg::max_abs_diff(strassen_exec.multiply(a, b), oracle),
            1e-7);
  EXPECT_LT(linalg::max_abs_diff(winograd_exec.multiply(a, b), oracle),
            1e-7);
  EXPECT_LT(linalg::max_abs_diff(ks_exec.multiply(a, b), oracle), 1e-7);

  // And their measured costs are ordered 5 < 6 < 7 (per n^{ω0} unit).
  const double n_omega = fpow(static_cast<double>(n), kOmega0);
  const double c7 =
      static_cast<double>(strassen_exec.op_count().total()) / n_omega;
  const double c6 =
      static_cast<double>(winograd_exec.op_count().total()) / n_omega;
  const double c5_bilinear =
      static_cast<double>(ks_exec.op_count().bilinear_mults +
                          ks_exec.op_count().bilinear_adds) /
      n_omega;
  EXPECT_LT(c5_bilinear, c6);
  EXPECT_LT(c6, c7);
}

}  // namespace
}  // namespace fmm
