// Unit tests for IntMat and straight-line linear circuits.
#include <gtest/gtest.h>

#include "bilinear/linear_circuit.hpp"
#include "common/check.hpp"

namespace fmm::bilinear {
namespace {

IntMat make(std::size_t r, std::size_t c, const std::vector<int>& data) {
  IntMat m(r, c);
  m.data = data;
  return m;
}

TEST(IntMat, Nnz) {
  const IntMat m = make(2, 3, {1, 0, -1, 0, 0, 2});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 1u);
}

TEST(IntMat, Multiply) {
  const IntMat a = make(2, 2, {1, 2, 3, 4});
  const IntMat b = make(2, 2, {0, 1, 1, 0});
  const IntMat c = IntMat::multiply(a, b);
  EXPECT_EQ(c.at(0, 0), 2);
  EXPECT_EQ(c.at(0, 1), 1);
  EXPECT_EQ(c.at(1, 0), 4);
  EXPECT_EQ(c.at(1, 1), 3);
}

TEST(IntMat, MultiplyShapeMismatchThrows) {
  const IntMat a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const IntMat b = make(2, 2, {1, 0, 0, 1});
  EXPECT_THROW(IntMat::multiply(a, b), CheckError);
}

TEST(IntMat, Kronecker) {
  const IntMat a = make(1, 2, {1, -1});
  const IntMat b = make(2, 1, {2, 3});
  const IntMat k = IntMat::kronecker(a, b);
  EXPECT_EQ(k.rows, 2u);
  EXPECT_EQ(k.cols, 2u);
  EXPECT_EQ(k.at(0, 0), 2);
  EXPECT_EQ(k.at(1, 0), 3);
  EXPECT_EQ(k.at(0, 1), -2);
  EXPECT_EQ(k.at(1, 1), -3);
}

TEST(IntMat, Identity) {
  const IntMat id = IntMat::identity(3);
  EXPECT_EQ(id.nnz(), 3u);
  EXPECT_EQ(id.at(1, 1), 1);
  EXPECT_EQ(id.at(0, 1), 0);
}

TEST(IntMat, Determinant) {
  EXPECT_EQ(IntMat::identity(4).determinant(), 1);
  EXPECT_EQ(make(2, 2, {1, 2, 3, 4}).determinant(), -2);
  EXPECT_EQ(make(2, 2, {1, 2, 2, 4}).determinant(), 0);
  EXPECT_EQ(make(3, 3, {2, 0, 0, 0, 3, 0, 0, 0, 4}).determinant(), 24);
  // Needs a row swap.
  EXPECT_EQ(make(2, 2, {0, 1, 1, 0}).determinant(), -1);
}

TEST(IntMat, DeterminantNonSquareThrows) {
  EXPECT_THROW(make(2, 3, {1, 2, 3, 4, 5, 6}).determinant(), CheckError);
}

TEST(IntMat, InverseInteger) {
  const IntMat m = make(2, 2, {1, 1, 0, 1});
  const IntMat inv = m.inverse_integer();
  EXPECT_EQ(IntMat::multiply(m, inv), IntMat::identity(2));
  EXPECT_EQ(inv.at(0, 1), -1);
}

TEST(IntMat, InverseOfPermutation) {
  const IntMat p = make(3, 3, {0, 1, 0, 0, 0, 1, 1, 0, 0});
  const IntMat inv = p.inverse_integer();
  EXPECT_EQ(IntMat::multiply(p, inv), IntMat::identity(3));
}

TEST(IntMat, SingularInverseThrows) {
  EXPECT_THROW(make(2, 2, {1, 2, 2, 4}).inverse_integer(), CheckError);
}

TEST(IntMat, NonIntegralInverseThrows) {
  // det = 2; inverse has halves.
  EXPECT_THROW(make(2, 2, {1, 1, -1, 1}).inverse_integer(), CheckError);
}

TEST(LinearCircuit, EvaluateSimpleSum) {
  // out = x0 + x1
  const LinearCircuit c(2, {LinOp{0, 1, 1, 1}}, {2});
  EXPECT_EQ(c.evaluate({3.0, 4.0}), (std::vector<double>{7.0}));
  EXPECT_EQ(c.evaluate_exact({3, 4}), (std::vector<std::int64_t>{7}));
}

TEST(LinearCircuit, SharedSubexpression) {
  // s = x0 + x1; out0 = s + x2; out1 = s - x2.
  const LinearCircuit c(3,
                        {LinOp{0, 1, 1, 1}, LinOp{3, 1, 2, 1},
                         LinOp{3, 1, 2, -1}},
                        {4, 5});
  const auto out = c.evaluate_exact({1, 2, 10});
  EXPECT_EQ(out, (std::vector<std::int64_t>{13, -7}));
  EXPECT_EQ(c.num_ops(), 3u);
}

TEST(LinearCircuit, ForwardReferenceThrows) {
  EXPECT_THROW(LinearCircuit(1, {LinOp{1, 1, 0, 1}}, {1}), CheckError);
}

TEST(LinearCircuit, BadOutputThrows) {
  EXPECT_THROW(LinearCircuit(1, {}, {1}), CheckError);
}

TEST(LinearCircuit, ToMatrix) {
  const LinearCircuit c(2, {LinOp{0, 1, 1, -1}}, {2, 0});
  const IntMat m = c.to_matrix();
  EXPECT_EQ(m.rows, 2u);
  EXPECT_EQ(m.cols, 2u);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), -1);
  EXPECT_EQ(m.at(1, 0), 1);
  EXPECT_EQ(m.at(1, 1), 0);
}

TEST(LinearCircuit, ComputesCheck) {
  const LinearCircuit c(2, {LinOp{0, 1, 1, 1}}, {2});
  EXPECT_TRUE(c.computes(make(1, 2, {1, 1})));
  EXPECT_FALSE(c.computes(make(1, 2, {1, -1})));
  EXPECT_FALSE(c.computes(make(2, 2, {1, 1, 0, 0})));
}

TEST(LinearCircuit, NaiveFromMatrixComputesIt) {
  const IntMat m = make(3, 4, {1, 0, 0, 0,      // wire
                               0, 1, -1, 1,     // 2 ops
                               0, 0, 0, 0});    // zero row
  const LinearCircuit c = LinearCircuit::naive_from_matrix(m);
  EXPECT_TRUE(c.computes(m));
  EXPECT_EQ(c.num_ops(), 3u);  // 2 for row 1, 1 for the zero row
}

TEST(LinearCircuit, NaiveOpCountMatchesNnz) {
  // Row with k >= 2 nonzeros costs k-1 ops; unit rows cost 0; negated
  // singleton costs 1.
  const IntMat m = make(3, 3, {1, 1, 1,    // 2 ops
                               0, -1, 0,   // 1 op (negation)
                               1, 0, 0});  // 0 ops
  const LinearCircuit c = LinearCircuit::naive_from_matrix(m);
  EXPECT_EQ(c.num_ops(), 3u);
  EXPECT_TRUE(c.computes(m));
}

TEST(LinearCircuit, ExactOverflowChecked) {
  const LinearCircuit c(1, {LinOp{0, 2, 0, 0}}, {1});
  EXPECT_THROW(c.evaluate_exact({INT64_MAX / 2 + 1}), fmm::CheckError);
}

}  // namespace
}  // namespace fmm::bilinear
