// Differential conformance harness: the exact branch-and-bound oracle
// (pebble/optimal.hpp) certifies every heuristic simulator path on every
// solver-feasible instance — zoo schemes (full CDAGs and encoder
// sub-CDAGs) plus a seeded grid of random DAGs.
//
// The certified chain per (instance, M) cell:
//
//   counting floor <= optimal(remat) <= optimal(no remat) <= heuristic
//
// where the counting floor is |must-load inputs| + |outputs| (every
// input that reaches an output must be loaded at least once, every
// output stored at least once), heuristics are simulate() over
// dfs/bfs/random schedules x lru/belady policies, and the recomputing
// regime is checked against simulate_with_recomputation.  Every failure
// message carries the replayable (scheme, side, n, M, seed) coordinates.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bilinear/catalog.hpp"
#include "bilinear/scheme.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "pebble/machine.hpp"
#include "pebble/optimal.hpp"
#include "pebble/schedules.hpp"

namespace fmm::pebble {
namespace {

std::string zoo_path(const std::string& file) {
  return std::string(FMM_SOURCE_ROOT) + "/schemes/" + file;
}

/// The encoder of one side of a bilinear scheme as a standalone pebble
/// instance: operand inputs feed the rank combination vertices, which
/// are all outputs (the shape Lemma 3.4 bounds).
PebbleInstance encoder_instance(const bilinear::BilinearAlgorithm& alg,
                                bilinear::Side side) {
  const auto supports = alg.product_supports(side);
  std::size_t num_inputs = 0;
  for (const auto& support : supports) {
    for (const std::size_t x : support) {
      num_inputs = std::max(num_inputs, x + 1);
    }
  }
  PebbleInstance instance;
  graph::GraphBuilder builder(num_inputs + supports.size());
  for (std::size_t x = 0; x < num_inputs; ++x) {
    instance.inputs.push_back(static_cast<graph::VertexId>(x));
  }
  for (std::size_t r = 0; r < supports.size(); ++r) {
    const auto v = static_cast<graph::VertexId>(num_inputs + r);
    for (const std::size_t x : supports[r]) {
      builder.add_edge(static_cast<graph::VertexId>(x), v);
    }
    instance.outputs.push_back(v);
  }
  instance.graph = builder.freeze();
  return instance;
}

/// Wraps a PebbleInstance as a minimal Cdag so the heuristic simulator
/// and schedule generators accept it: inputs play the A role, internal
/// vertices are products, outputs are outputs.
cdag::Cdag cdag_from_instance(const PebbleInstance& instance) {
  cdag::Cdag cdag;
  cdag.graph = instance.graph;
  cdag.roles.assign(cdag.graph.num_vertices(), cdag::Role::kProduct);
  for (const graph::VertexId v : instance.inputs) {
    cdag.roles[v] = cdag::Role::kInputA;
    cdag.inputs_a.push_back(v);
  }
  for (const graph::VertexId v : instance.outputs) {
    cdag.roles[v] = cdag::Role::kOutput;
    cdag.outputs.push_back(v);
  }
  cdag.algorithm_name = "instance";
  return cdag;
}

/// Trivially sound floor: every input with a path to an output must be
/// red at some point and inputs cannot be computed, so each costs one
/// LOAD; every output starts non-blue and costs one STORE.
std::int64_t counting_floor(const PebbleInstance& instance) {
  const std::size_t nv = instance.graph.num_vertices();
  std::vector<bool> reaches(nv, false);
  for (const graph::VertexId v : instance.outputs) {
    reaches[v] = true;
  }
  // Edges satisfy u < v (GraphBuilder::freeze), so one descending pass
  // propagates reachability-to-an-output.
  for (graph::VertexId v = static_cast<graph::VertexId>(nv); v-- > 0;) {
    if (!reaches[v]) {
      continue;
    }
    for (const graph::VertexId u : instance.graph.in_neighbors(v)) {
      reaches[u] = true;
    }
  }
  std::int64_t loads = 0;
  for (const graph::VertexId v : instance.inputs) {
    loads += reaches[v] ? 1 : 0;
  }
  return loads + static_cast<std::int64_t>(instance.outputs.size());
}

struct HeuristicRun {
  std::string name;
  std::int64_t total_io = 0;
  bool remat = false;  // which optimal variant upper-bounds it
};

/// Runs every heuristic schedule x policy combination that is legal at
/// this M; illegal combinations (cache too small for the schedule's
/// working set, remat livelock) are skipped, not failures.
std::vector<HeuristicRun> run_heuristics(const cdag::Cdag& cdag,
                                         std::int64_t m,
                                         std::uint64_t seed) {
  std::vector<HeuristicRun> runs;
  Rng rng(seed);
  const std::vector<std::pair<std::string, std::vector<graph::VertexId>>>
      schedules = {
          {"dfs", dfs_schedule(cdag)},
          {"bfs", bfs_schedule(cdag)},
          {"random", random_topological_schedule(cdag, rng)},
      };
  for (const auto& [schedule_name, schedule] : schedules) {
    for (const bool belady : {false, true}) {
      SimOptions options;
      options.cache_size = m;
      options.replacement =
          belady ? ReplacementPolicy::kBelady : ReplacementPolicy::kLru;
      try {
        const SimResult result = simulate(cdag, schedule, options);
        runs.push_back({schedule_name + (belady ? "/belady" : "/lru"),
                        result.total_io(), false});
      } catch (const CheckError&) {
        // M too small for this schedule — the oracle may still solve
        // the cell; just drop this heuristic from the chain.
      }
    }
    if (schedule_name == "dfs") {
      SimOptions options;
      options.cache_size = m;
      options.writeback = WritebackPolicy::kDropRecomputable;
      try {
        const SimResult result =
            simulate_with_recomputation(cdag, schedule, options);
        runs.push_back({"dfs/remat", result.total_io(), true});
      } catch (const CheckError&) {
      }
    }
  }
  return runs;
}

/// The harness core: solves both recomputation variants and checks the
/// full certified chain on one (instance, M) cell.  `tag` carries the
/// replayable coordinates into every assertion message.
void check_cell(const PebbleInstance& instance, std::int64_t m,
                const std::string& tag, std::uint64_t seed = 1) {
  SCOPED_TRACE(tag + " M=" + std::to_string(m) +
               " seed=" + std::to_string(seed));
  OptimalPebbleOptions with;
  with.cache_size = m;
  with.allow_recomputation = true;
  OptimalPebbleOptions without = with;
  without.allow_recomputation = false;

  OptimalPebbleResult opt_with;
  OptimalPebbleResult opt_without;
  try {
    opt_with = optimal_io(instance, with);
    opt_without = optimal_io(instance, without);
  } catch (const InfeasibleError&) {
    // M too small to ever pebble the instance — nothing to certify.
    return;
  }
  ASSERT_GT(opt_with.states_explored, 0u);
  ASSERT_GT(opt_without.states_explored, 0u);

  // Lower end of the chain.  min_io is a certified lower bound even
  // when the state budget tripped, so comparisons against heuristics
  // stay valid; the floor comparison needs exactness.
  const bool both_exact =
      opt_with.optimality == OptimalPebbleResult::Optimality::kExact &&
      opt_without.optimality == OptimalPebbleResult::Optimality::kExact;
  if (both_exact) {
    EXPECT_GE(opt_with.min_io, counting_floor(instance));
    // Forbidding recomputation can never reduce the optimum.
    EXPECT_LE(opt_with.min_io, opt_without.min_io);
  }

  // Upper end: every valid schedule's I/O dominates the corresponding
  // game variant's optimum (and a fortiori the recomputing optimum).
  const cdag::Cdag cdag = cdag_from_instance(instance);
  for (const HeuristicRun& run : run_heuristics(cdag, m, seed)) {
    EXPECT_LE(opt_with.min_io, run.total_io) << "heuristic " << run.name;
    if (!run.remat) {
      EXPECT_LE(opt_without.min_io, run.total_io)
          << "heuristic " << run.name;
    }
  }
}

TEST(OptimalDifferential, ZooEncodersBothSides) {
  // Every zoo scheme's encoders, both sides, at a small M grid.  The
  // rect_336_46 B-encoder sits exactly at the 64-vertex solver ceiling.
  const std::vector<std::string> zoo = {
      "strassen_222_7.json",
      "hk_style_222_7.json",
      "laderman_333_23.json",
      "rect_336_46.json",
  };
  for (const std::string& file : zoo) {
    const bilinear::BilinearAlgorithm alg =
        bilinear::to_algorithm(bilinear::load_scheme_file(zoo_path(file)));
    for (const bilinear::Side side :
         {bilinear::Side::kA, bilinear::Side::kB}) {
      const PebbleInstance instance = encoder_instance(alg, side);
      if (instance.graph.num_vertices() > 64) {
        continue;  // beyond the oracle's mask width
      }
      const std::string tag =
          file + (side == bilinear::Side::kA ? "/A" : "/B");
      // M large enough that the search stays exact within the default
      // budget (tight-M cells on the biggest encoders are budget-bound
      // by design, and a budget-bound cell costs seconds, not ms).
      const std::int64_t m =
          instance.graph.num_vertices() >= 60 ? 19 : 10;
      check_cell(instance, m, tag);
    }
  }
}

TEST(OptimalDifferential, FullStrassenLikeCdags) {
  // Full H^{2x2} CDAGs of the two 2x2x7 zoo schemes (33 vertices) —
  // the complete load-encode-multiply-decode-store pipeline.
  for (const std::string& file :
       {std::string("strassen_222_7.json"),
        std::string("hk_style_222_7.json")}) {
    const bilinear::BilinearAlgorithm alg =
        bilinear::to_algorithm(bilinear::load_scheme_file(zoo_path(file)));
    const cdag::Cdag cdag = cdag::build_cdag(alg, 2);
    const PebbleInstance instance = to_instance(cdag);
    ASSERT_LE(instance.graph.num_vertices(), 64u) << file;
    for (const std::int64_t m : {12, 16}) {
      check_cell(instance, m, file + "/full");
    }
  }
}

TEST(OptimalDifferential, CatalogStrassenMatchesFileScheme) {
  // The catalog's built-in Strassen and the zoo file are the same
  // scheme, so their optima must agree cell by cell.
  const cdag::Cdag catalog_cdag =
      cdag::build_cdag(bilinear::strassen(), 2);
  const cdag::Cdag file_cdag = cdag::build_cdag(
      bilinear::to_algorithm(
          bilinear::load_scheme_file(zoo_path("strassen_222_7.json"))),
      2);
  for (const std::int64_t m : {12, 16}) {
    OptimalPebbleOptions options;
    options.cache_size = m;
    const auto a = optimal_io(to_instance(catalog_cdag), options);
    const auto b = optimal_io(to_instance(file_cdag), options);
    EXPECT_EQ(a.min_io, b.min_io) << "M=" << m;
  }
}

TEST(OptimalDifferential, RandomInstanceGrid) {
  // Seeded grid of random DAGs: the oracle certifies the heuristics on
  // shapes no scheme produces.  Coordinates print on failure, so any
  // violation replays as random_instance(inputs, internal, fanin, seed).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::size_t num_inputs = 3 + seed % 3;
    const std::size_t num_internal = 5 + seed % 5;
    const PebbleInstance instance =
        random_instance(num_inputs, num_internal, 3, seed);
    const std::string tag = "random_instance(" +
                            std::to_string(num_inputs) + ", " +
                            std::to_string(num_internal) + ", 3, " +
                            std::to_string(seed) + ")";
    for (const std::int64_t m : {4, 6, 8}) {
      check_cell(instance, m, tag, seed);
    }
  }
}

TEST(OptimalDifferential, VariantOrderingUnderBudget) {
  // Even with a starved state budget the returned values are certified
  // lower bounds, so optimal <= heuristic must STILL hold — the chain
  // degrades gracefully instead of inverting.
  const PebbleInstance instance = random_instance(4, 8, 3, 7);
  OptimalPebbleOptions options;
  options.cache_size = 4;
  options.max_states = 16;
  OptimalPebbleResult starved;
  try {
    starved = optimal_io(instance, options);
  } catch (const InfeasibleError&) {
    GTEST_SKIP() << "M=4 infeasible for this instance";
  }
  options.max_states = OptimalPebbleOptions{}.max_states;
  const OptimalPebbleResult full = optimal_io(instance, options);
  ASSERT_EQ(full.optimality, OptimalPebbleResult::Optimality::kExact);
  EXPECT_LE(starved.min_io, full.min_io);
}

}  // namespace
}  // namespace fmm::pebble
