// Tests for the exact optimal red–blue pebbler (pebble/optimal.hpp):
// hand-computable instances, duality with heuristic simulation, and the
// Section-V question "when does recomputation help?" answered exactly on
// small DAGs.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "pebble/machine.hpp"
#include "pebble/optimal.hpp"
#include "pebble/schedules.hpp"

namespace fmm::pebble {
namespace {

PebbleInstance chain(std::size_t length) {
  // in -> v1 -> v2 -> ... -> v_length (output).
  PebbleInstance instance;
  graph::GraphBuilder builder(length + 1);
  instance.inputs = {0};
  for (graph::VertexId v = 0; v < length; ++v) {
    builder.add_edge(v, v + 1);
  }
  instance.graph = builder.freeze();
  instance.outputs = {static_cast<graph::VertexId>(length)};
  return instance;
}

PebbleInstance diamond() {
  // 0 (input) -> {1, 2} -> 3 (output).
  PebbleInstance instance;
  graph::GraphBuilder builder(4);
  instance.inputs = {0};
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  instance.graph = builder.freeze();
  instance.outputs = {3};
  return instance;
}

TEST(OptimalPebble, ChainMinimumIsLoadPlusStore) {
  // A chain needs exactly: load the input, compute along, store the
  // output — 2 I/O operations, for any M >= 2.
  for (const std::int64_t m : {2, 3, 8}) {
    OptimalPebbleOptions options;
    options.cache_size = m;
    const auto result = optimal_io(chain(4), options);
    EXPECT_EQ(result.min_io, 2) << "M=" << m;
  }
}

TEST(OptimalPebble, ChainWithCacheOneIsUnsolvable) {
  // M = 1 cannot hold an operand and its result simultaneously.
  OptimalPebbleOptions options;
  options.cache_size = 1;
  EXPECT_THROW(optimal_io(chain(2), options), CheckError);
}

TEST(OptimalPebble, DiamondNeedsTwoIo) {
  // Load input (1), compute 1, 2, 3 (free), store output (1) — M >= 3
  // (operands {1,2} plus result 3).
  OptimalPebbleOptions options;
  options.cache_size = 3;
  EXPECT_EQ(optimal_io(diamond(), options).min_io, 2);
}

TEST(OptimalPebble, DiamondCacheTwoIsUnsolvable) {
  // Computing the join vertex needs both predecessors red plus a slot
  // for the result: 3 pebbles; M = 2 cannot ever compute it.
  OptimalPebbleOptions options;
  options.cache_size = 2;
  EXPECT_THROW(optimal_io(diamond(), options), CheckError);
}

TEST(OptimalPebble, RecomputationNeverHurts) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const PebbleInstance instance = random_instance(3, 6, 2, seed);
    for (const std::int64_t m : {2, 3}) {
      OptimalPebbleOptions with;
      with.cache_size = m;
      with.allow_recomputation = true;
      OptimalPebbleOptions without = with;
      without.allow_recomputation = false;
      std::int64_t io_with = 0, io_without = 0;
      try {
        io_with = optimal_io(instance, with).min_io;
        io_without = optimal_io(instance, without).min_io;
      } catch (const CheckError&) {
        continue;  // M too small for this instance
      }
      EXPECT_LE(io_with, io_without) << "seed=" << seed << " M=" << m;
    }
  }
}

TEST(OptimalPebble, RecomputationStrictlyHelpsSomewhere) {
  // Section V: recomputation IS useful for some CDAGs (Savage).  The
  // exact solver finds such instances among small random DAGs — a value
  // gets evicted un-stored and is cheaper to recompute than to round-trip
  // through slow memory.
  int found = 0;
  for (std::uint64_t seed = 0; seed < 40 && found == 0; ++seed) {
    const PebbleInstance instance = random_instance(3, 7, 2, seed);
    try {
      if (recomputation_advantage(instance, 3) > 0) {
        ++found;
      }
    } catch (const CheckError&) {
      continue;
    }
  }
  EXPECT_GT(found, 0) << "no instance with strict recomputation advantage "
                         "found in the sweep";
}

PebbleInstance dot_product() {
  // Mini matrix multiplication: C = a1*b1 + a2*b2.
  // Vertices: 0..3 inputs (a1, a2, b1, b2), 4 = m1, 5 = m2, 6 = c.
  PebbleInstance instance;
  graph::GraphBuilder builder(7);
  instance.inputs = {0, 1, 2, 3};
  builder.add_edge(0, 4);
  builder.add_edge(2, 4);
  builder.add_edge(1, 5);
  builder.add_edge(3, 5);
  builder.add_edge(4, 6);
  builder.add_edge(5, 6);
  instance.graph = builder.freeze();
  instance.outputs = {6};
  return instance;
}

PebbleInstance strassen_encoder() {
  // The A-encoder of Strassen as a standalone DAG: 4 inputs feeding 7
  // combination vertices (all outputs) — Figure 2 as a pebble instance.
  const auto supports = bilinear::strassen().product_supports(
      bilinear::Side::kA);
  PebbleInstance instance;
  graph::GraphBuilder builder(4 + supports.size());
  instance.inputs = {0, 1, 2, 3};
  for (std::size_t r = 0; r < supports.size(); ++r) {
    const auto v = static_cast<graph::VertexId>(4 + r);
    for (const std::size_t x : supports[r]) {
      builder.add_edge(static_cast<graph::VertexId>(x), v);
    }
    instance.outputs.push_back(v);
  }
  instance.graph = builder.freeze();
  return instance;
}

TEST(OptimalPebble, DotProductExactIo) {
  // M >= 4: 4 input loads + 1 output store (m1 stays resident while
  // {a2, b2} load).  M = 3 forces one intermediate round trip: m1 must
  // be stored and reloaded (or its operands reloaded) -> 7 total.
  for (const std::int64_t m : {4, 5, 7}) {
    OptimalPebbleOptions options;
    options.cache_size = m;
    EXPECT_EQ(optimal_io(dot_product(), options).min_io, 5) << "M=" << m;
  }
  OptimalPebbleOptions tight;
  tight.cache_size = 3;
  EXPECT_EQ(optimal_io(dot_product(), tight).min_io, 7);
}

TEST(OptimalPebble, DotProductMonotoneInM) {
  std::int64_t prev = INT64_MAX;
  for (const std::int64_t m : {3, 4, 5}) {
    OptimalPebbleOptions options;
    options.cache_size = m;
    const std::int64_t io = optimal_io(dot_product(), options).min_io;
    EXPECT_LE(io, prev) << "M=" << m;
    prev = io;
  }
}

TEST(OptimalPebble, StrassenEncoderExactIo) {
  // 4 loads + 7 stores = 11 with enough cache (inputs stay resident).
  OptimalPebbleOptions options;
  options.cache_size = 5;  // 4 inputs + 1 result slot suffice
  EXPECT_EQ(optimal_io(strassen_encoder(), options).min_io, 11);
}

TEST(OptimalPebble, StrassenEncoderTightCache) {
  // M = 3: inputs cannot all stay resident; extra loads are forced, but
  // recomputation cannot help (encoder outputs are stored anyway).
  const PebbleInstance instance = strassen_encoder();
  OptimalPebbleOptions with;
  with.cache_size = 3;
  with.allow_recomputation = true;
  OptimalPebbleOptions without = with;
  without.allow_recomputation = false;
  const auto io_with = optimal_io(instance, with).min_io;
  const auto io_without = optimal_io(instance, without).min_io;
  EXPECT_GT(io_with, 11);
  EXPECT_EQ(io_with, io_without);
}

TEST(OptimalPebble, DotProductRecomputationUseless) {
  // Values are used once — Table I's footnote for classical MM: there is
  // no point in recomputation, and the exact optima agree.
  for (const std::int64_t m : {3, 4}) {
    EXPECT_EQ(recomputation_advantage(dot_product(), m), 0) << "M=" << m;
  }
}

TEST(OptimalPebble, TooManyVerticesRejected) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), 4);
  OptimalPebbleOptions options;
  EXPECT_THROW(optimal_io(to_instance(cdag), options), CheckError);
  // The over-limit case is classified infeasible, not a generic failure,
  // so `optimal`-kind sweep cells at untracked sizes become skips.
  EXPECT_THROW(optimal_io(to_instance(cdag), options), InfeasibleError);
}

TEST(OptimalPebble, SixtyFourVertexBoundaryIsInclusive) {
  // chain(63) has exactly 64 vertices — the solver's new ceiling.
  OptimalPebbleOptions options;
  options.cache_size = 2;
  EXPECT_EQ(optimal_io(chain(63), options).min_io, 2);
  EXPECT_THROW(optimal_io(chain(64), options), InfeasibleError);
}

TEST(OptimalPebble, UnsolvableThrowsInfeasibleError) {
  OptimalPebbleOptions options;
  options.cache_size = 1;
  EXPECT_THROW(optimal_io(chain(2), options), InfeasibleError);
}

TEST(OptimalPebble, StrassenFullCdagExactIo) {
  // The full H^{2x2} Strassen CDAG (33 vertices: 8 inputs, 14 encoder
  // combinations, 7 products, 4 outputs) is the first acceptance target
  // of the branch-and-bound solver.  With enough cache the optimum is
  // the trivial floor: 8 input loads + 4 output stores.
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), 2);
  const PebbleInstance instance = to_instance(cdag);
  EXPECT_EQ(instance.graph.num_vertices(), 33u);
  for (const bool remat : {true, false}) {
    OptimalPebbleOptions options;
    options.cache_size = 16;
    options.allow_recomputation = remat;
    const auto result = optimal_io(instance, options);
    EXPECT_EQ(result.min_io, 12) << "remat=" << remat;
    EXPECT_EQ(result.optimality, OptimalPebbleResult::Optimality::kExact);
    EXPECT_GT(result.states_explored, 0u);
  }
}

TEST(OptimalPebble, StrassenFullCdagVariantOrdering) {
  // M = 12 is the smallest cache for which both searches stay exact
  // within the default budget; the optima stay ordered:
  // min_io(remat) <= min_io(no-remat).
  const PebbleInstance instance =
      to_instance(cdag::build_cdag(bilinear::strassen(), 2));
  OptimalPebbleOptions with;
  with.cache_size = 12;
  with.allow_recomputation = true;
  OptimalPebbleOptions without = with;
  without.allow_recomputation = false;
  const auto r_with = optimal_io(instance, with);
  const auto r_without = optimal_io(instance, without);
  EXPECT_EQ(r_with.optimality, OptimalPebbleResult::Optimality::kExact);
  EXPECT_EQ(r_without.optimality, OptimalPebbleResult::Optimality::kExact);
  EXPECT_GE(r_with.min_io, 12);
  EXPECT_LE(r_with.min_io, r_without.min_io);
}

TEST(OptimalPebble, BudgetExceededReturnsCertifiedLowerBound) {
  // A starved state budget must not throw: the solver reports the
  // frontier's minimum f — a valid lower bound on the optimum — tagged
  // budget_exceeded.  dot_product at M=3 has optimum 7 and admissible
  // root h of 5, so the bound lands in [5, 7].
  OptimalPebbleOptions options;
  options.cache_size = 3;
  options.max_states = 4;
  const auto result = optimal_io(dot_product(), options);
  EXPECT_EQ(result.optimality,
            OptimalPebbleResult::Optimality::kBudgetExceeded);
  EXPECT_GE(result.min_io, 5);
  EXPECT_LE(result.min_io, 7);
}

TEST(OptimalPebble, RootLowerBoundPreservesOptimum) {
  // An external certified bound prunes but never changes an exact answer,
  // whether it is slack or tight.
  for (const std::int64_t root : {0, 3, 5}) {
    OptimalPebbleOptions options;
    options.cache_size = 4;
    options.root_lower_bound = root;
    EXPECT_EQ(optimal_io(dot_product(), options).min_io, 5)
        << "root=" << root;
  }
}

TEST(OptimalPebble, OptimalityNames) {
  EXPECT_STREQ(optimality_name(OptimalPebbleResult::Optimality::kExact),
               "exact");
  EXPECT_STREQ(
      optimality_name(OptimalPebbleResult::Optimality::kBudgetExceeded),
      "budget_exceeded");
}

TEST(OptimalPebble, RandomInstanceShape) {
  const PebbleInstance instance = random_instance(4, 8, 3, 99);
  EXPECT_EQ(instance.graph.num_vertices(), 12u);
  EXPECT_EQ(instance.inputs.size(), 4u);
  EXPECT_FALSE(instance.outputs.empty());
  EXPECT_TRUE(instance.graph.is_dag());
  for (const graph::VertexId v : instance.inputs) {
    EXPECT_EQ(instance.graph.in_degree(v), 0u);
  }
}

}  // namespace
}  // namespace fmm::pebble
