// Edge-case and small-path coverage across modules: degenerate sizes,
// file round trips, and error paths not exercised elsewhere.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bilinear/catalog.hpp"
#include "bilinear/executor.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fft/fft.hpp"
#include "graph/digraph.hpp"
#include "linalg/matmul.hpp"

namespace fmm {
namespace {

TEST(EdgeCases, RngUniformBoundOne) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform(1), 0u);
  }
}

TEST(EdgeCases, RngFullRangeInt) {
  Rng rng(2);
  // Degenerate full-int64 range must not loop forever.
  const std::int64_t v = rng.uniform_int(INT64_MIN, INT64_MAX);
  (void)v;
  SUCCEED();
}

TEST(EdgeCases, TableCsvFileRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "hello, world"});
  const std::string path = "/tmp/fmm_table_test.csv";
  t.write_csv_file(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "x,y\n1,\"hello, world\"\n");
  std::remove(path.c_str());
}

TEST(EdgeCases, DigraphParallelEdges) {
  graph::Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_TRUE(g.is_dag());
}

TEST(EdgeCases, DigraphDotGuardAboveVertexLimit) {
  // Rendering a CDAG-sized graph to DOT produces output nobody can lay
  // out; the guard must trip above kDotVertexLimit unless overridden.
  graph::Digraph g(graph::kDotVertexLimit + 1);
  EXPECT_THROW(g.to_dot(), CheckError);
  EXPECT_NO_THROW(g.to_dot({}, /*allow_large=*/true));
  graph::Digraph small(3);
  EXPECT_NO_THROW(small.to_dot());
}

TEST(EdgeCases, OneByOneMultiply) {
  bilinear::RecursiveExecutor executor(bilinear::strassen());
  linalg::Mat a(1, 1, 3.0), b(1, 1, 4.0);
  const linalg::Mat c = executor.multiply(a, b);
  EXPECT_EQ(c(0, 0), 12.0);
  EXPECT_EQ(executor.op_count().multiplications, 1);
}

TEST(EdgeCases, PaddedMultiplyOneByOne) {
  bilinear::RecursiveExecutor executor(bilinear::winograd());
  linalg::Mat a(1, 3), b(3, 1);
  linalg::fill_random(a, 1);
  linalg::fill_random(b, 2);
  const linalg::Mat c = executor.multiply_padded(a, b);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_NEAR(c(0, 0),
              a(0, 0) * b(0, 0) + a(0, 1) * b(1, 0) + a(0, 2) * b(2, 0),
              1e-12);
}

TEST(EdgeCases, ConvolveSizeMismatchThrows) {
  std::vector<fft::Complex> a(8), b(4);
  EXPECT_THROW(fft::convolve(a, b), CheckError);
}

TEST(EdgeCases, ClassicOneDimensional) {
  // <1,1,1;1> — the smallest valid bilinear algorithm.
  const auto alg = bilinear::classic(1, 1, 1);
  EXPECT_EQ(alg.num_products(), 1u);
  EXPECT_TRUE(alg.is_valid());
}

TEST(EdgeCases, TensorWithTrivial) {
  // Tensoring with <1,1,1;1> must be the identity on structure.
  const auto t = bilinear::BilinearAlgorithm::tensor(
      bilinear::strassen(), bilinear::classic(1, 1, 1));
  EXPECT_EQ(t.n(), 2u);
  EXPECT_EQ(t.num_products(), 7u);
  EXPECT_TRUE(t.is_valid());
  EXPECT_EQ(t.u(), bilinear::strassen().u());
}

TEST(EdgeCases, EmptyMatrixDefaults) {
  linalg::Mat m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(linalg::Mat::from_rows({}).size(), 0u);
}

TEST(EdgeCases, MatrixEquality) {
  linalg::Mat a(2, 2, 1.0);
  linalg::Mat b(2, 2, 1.0);
  EXPECT_TRUE(a == b);
  b(1, 1) = 2.0;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace fmm
