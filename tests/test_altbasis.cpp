// Tests for the alternative-basis machinery (paper Section IV /
// Karstadt–Schwartz): sparsest-basis search, recursive transforms, ABMM
// executor correctness, and the leading-coefficient-5 result.
#include <gtest/gtest.h>

#include "altbasis/alt_basis.hpp"
#include "altbasis/basis_search.hpp"
#include "altbasis/transform.hpp"
#include "bilinear/catalog.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "linalg/matmul.hpp"

namespace fmm::altbasis {
namespace {

using bilinear::BilinearAlgorithm;
using bilinear::IntMat;
using linalg::fill_random;
using linalg::Mat;
using linalg::max_abs_diff;
using linalg::multiply_naive;

TEST(IntegerRank, Basics) {
  EXPECT_EQ(integer_rank({}), 0u);
  EXPECT_EQ(integer_rank({{1, 0}, {0, 1}}), 2u);
  EXPECT_EQ(integer_rank({{1, 1}, {2, 2}}), 1u);
  EXPECT_EQ(integer_rank({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}), 2u);
  EXPECT_EQ(integer_rank({{0, 0, 0}}), 0u);
}

TEST(BasisSearch, IdentityIsOptimalForIdentity) {
  // For U = I the best G keeps nnz at the minimum possible = dim.
  const IntMat id = IntMat::identity(4);
  const BasisSearchResult r = optimize_encoder_basis(id);
  EXPECT_EQ(r.transformed_nnz, 4u);
}

TEST(BasisSearch, EncoderTransformIsInvertible) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    const BasisSearchResult r = optimize_encoder_basis(alg.u());
    EXPECT_NE(r.transform.determinant(), 0) << alg.name();
  }
}

TEST(BasisSearch, DecoderTransformIsInvertible) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    const BasisSearchResult r = optimize_decoder_basis(alg.w());
    EXPECT_NE(r.transform.determinant(), 0) << alg.name();
  }
}

TEST(BasisSearch, NeverWorseThanIdentity) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    EXPECT_LE(optimize_encoder_basis(alg.u()).transformed_nnz,
              alg.u().nnz())
        << alg.name();
    EXPECT_LE(optimize_encoder_basis(alg.v()).transformed_nnz,
              alg.v().nnz())
        << alg.name();
    EXPECT_LE(optimize_decoder_basis(alg.w()).transformed_nnz,
              alg.w().nnz())
        << alg.name();
  }
}

TEST(BasisSearch, WinogradReachesKarstadtSchwartzCounts) {
  // The paper's Section IV reference point: alternative-basis Winograd
  // performs 12 base linear ops (leading coefficient 5).  The matroid
  // greedy is exact, so these values are deterministic.
  const BilinearAlgorithm w = bilinear::winograd();
  const BasisSearchResult enc_a = optimize_encoder_basis(w.u());
  const BasisSearchResult enc_b = optimize_encoder_basis(w.v());
  const BasisSearchResult dec = optimize_decoder_basis(w.w());
  // nnz 10 over 7 rows -> 3 adds each encoder; nnz 10 over 4 rows -> 6.
  EXPECT_EQ(enc_a.transformed_nnz, 10u);
  EXPECT_EQ(enc_b.transformed_nnz, 10u);
  EXPECT_EQ(dec.transformed_nnz, 10u);
}

TEST(AlternativeBasis, WinogradLeadingCoefficientFive) {
  const AlternativeBasis ab = make_alternative_basis(bilinear::winograd());
  EXPECT_EQ(ab.base_linear_ops, 12u);
  EXPECT_NEAR(ab.transformed.leading_coefficient(), 5.0, 1e-12);
}

TEST(AlternativeBasis, TwistedValidityCertified) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    const AlternativeBasis ab = make_alternative_basis(alg);
    EXPECT_TRUE(ab.is_twisted_valid(alg)) << alg.name();
  }
}

TEST(AlternativeBasis, StrassenImprovesOrMatches) {
  const AlternativeBasis ab = make_alternative_basis(bilinear::strassen());
  // Strassen naive is 18; the alternative basis must not be worse than
  // Winograd's optimum (12) is a known floor for 2x2;7 algorithms.
  EXPECT_LE(ab.base_linear_ops, 18u);
  EXPECT_GE(ab.base_linear_ops, 12u);
}

TEST(Transform, IdentityIsNoop) {
  Mat x(8, 8);
  fill_random(x, 42);
  std::int64_t adds = 0;
  const Mat y =
      apply_basis_recursive(IntMat::identity(4), 2, x, &adds);
  EXPECT_EQ(max_abs_diff(x, y), 0.0);
  EXPECT_EQ(adds, 0);
}

TEST(Transform, InverseRoundTrip) {
  const AlternativeBasis ab = make_alternative_basis(bilinear::winograd());
  Mat x(16, 16);
  fill_random(x, 77);
  const Mat forward = apply_basis_recursive(ab.e, 2, x);
  const Mat back = apply_inverse_basis_recursive(ab.e, 2, forward);
  EXPECT_LT(max_abs_diff(x, back), 1e-9);
}

TEST(Transform, PhiInverseRoundTrip) {
  const AlternativeBasis ab = make_alternative_basis(bilinear::winograd());
  Mat x(8, 8);
  fill_random(x, 5);
  // φ = G^{-1} (via adjugate) then G recovers the input.
  const Mat forward = apply_inverse_basis_recursive(ab.g, 2, x);
  const Mat back = apply_basis_recursive(ab.g, 2, forward);
  EXPECT_LT(max_abs_diff(x, back), 1e-9);
}

TEST(Transform, AddCountMatchesClosedForm) {
  const AlternativeBasis ab = make_alternative_basis(bilinear::winograd());
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    Mat x(n, n);
    fill_random(x, n);
    std::int64_t adds = 0;
    apply_basis_recursive(ab.g, 2, x, &adds);
    EXPECT_EQ(adds, recursive_transform_adds(ab.g, 2, n)) << "n=" << n;
  }
}

TEST(Transform, CostIsNSquaredLogN) {
  const AlternativeBasis ab = make_alternative_basis(bilinear::winograd());
  // adds(n) / n^2 should grow linearly in log n.
  const std::int64_t a8 = recursive_transform_adds(ab.g, 2, 8);
  const std::int64_t a64 = recursive_transform_adds(ab.g, 2, 64);
  const double per_elem_8 = static_cast<double>(a8) / (8 * 8);
  const double per_elem_64 = static_cast<double>(a64) / (64 * 64);
  EXPECT_NEAR(per_elem_64 / per_elem_8, 2.0, 1e-9);  // log ratio 6/3
}

TEST(Transform, BadShapeThrows) {
  Mat x(6, 6);
  EXPECT_THROW(apply_basis_recursive(IntMat::identity(4), 2, x),
               CheckError);
}

class AbmmCorrectness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AbmmCorrectness, MatchesOracle) {
  const std::size_t n = GetParam();
  AltBasisExecutor executor(bilinear::winograd());
  Mat a(n, n), b(n, n);
  fill_random(a, 100 + n);
  fill_random(b, 200 + n);
  const Mat fast = executor.multiply(a, b);
  EXPECT_LT(max_abs_diff(fast, multiply_naive(a, b)), 1e-7) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, AbmmCorrectness,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 32));

TEST(Abmm, StrassenBasisAlsoCorrect) {
  AltBasisExecutor executor(bilinear::strassen());
  Mat a(16, 16), b(16, 16);
  fill_random(a, 1);
  fill_random(b, 2);
  EXPECT_LT(max_abs_diff(executor.multiply(a, b), multiply_naive(a, b)),
            1e-7);
}

TEST(Abmm, OpCountBeatsWinograd) {
  // For large n the bilinear part of ABMM does fewer additions than
  // plain Winograd: coefficient 5 vs 6 (transforms add only O(n^2 log n)).
  const std::size_t n = 256;
  AltBasisExecutor ab(bilinear::winograd());
  Mat a(n, n), b(n, n);
  fill_random(a, 9);
  fill_random(b, 10);
  ab.multiply(a, b);
  const auto abc = ab.op_count();

  bilinear::RecursiveExecutor wino(bilinear::winograd());
  const auto predicted = wino.predicted_count(n);

  EXPECT_LT(abc.bilinear_adds + abc.transform_adds, predicted.additions);
  EXPECT_EQ(abc.bilinear_mults, predicted.multiplications);
}

TEST(Abmm, BilinearLeadingCoefficientConvergesToFive) {
  // The bilinear phase carries the n^{log2 7} term with coefficient 5;
  // the basis transforms are the o(n^{log2 7}) overhead (Θ(n^2 log n))
  // and are checked separately for their scaling.
  AltBasisExecutor ab(bilinear::winograd());
  const std::size_t n = 256;
  Mat a(n, n), b(n, n);
  fill_random(a, 11);
  fill_random(b, 12);
  ab.multiply(a, b);
  const double n_omega = fpow(static_cast<double>(n), kOmega0);
  const double bilinear =
      static_cast<double>(ab.op_count().bilinear_mults +
                          ab.op_count().bilinear_adds);
  EXPECT_GT(bilinear / n_omega, 4.3);
  EXPECT_LT(bilinear / n_omega, 5.0);
  // Transform overhead: Θ(n^2 log n) words — per element it grows like
  // log n, far below the bilinear cost per element (~n^{0.807}).
  const double transform_per_elem =
      static_cast<double>(ab.op_count().transform_adds) /
      static_cast<double>(n * n);
  EXPECT_LT(transform_per_elem, 3.0 * 8.0 * 4.0);  // 3 transforms, 8 levels
}

TEST(Abmm, RequiresSquareBase) {
  EXPECT_THROW(make_alternative_basis(bilinear::rect_2x2x4()), CheckError);
}

}  // namespace
}  // namespace fmm::altbasis
