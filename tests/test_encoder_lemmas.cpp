// Certification of the paper's encoder-graph lemmas (Section III):
// Lemma 3.1 (matching), Lemma 3.2 (degrees), Lemma 3.3 (distinct
// supports), Lemma 3.4 / Corollary 3.5 (Hopcroft–Kerr sets).  These are
// the paper's replacement for Bilardi–De Stefani's case analysis, so we
// check them on EVERY fast 2x2-base algorithm in the catalog.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "bounds/encoder_lemmas.hpp"
#include "common/check.hpp"

namespace fmm::bounds {
namespace {

using bilinear::BilinearAlgorithm;
using bilinear::Side;

TEST(Lemma31Formula, RequiredMatchingValues) {
  // 1 + ceil((k-1)/2).
  EXPECT_EQ(lemma31_required_matching(1), 1u);
  EXPECT_EQ(lemma31_required_matching(2), 2u);
  EXPECT_EQ(lemma31_required_matching(3), 2u);
  EXPECT_EQ(lemma31_required_matching(4), 3u);
  EXPECT_EQ(lemma31_required_matching(5), 3u);
  EXPECT_EQ(lemma31_required_matching(6), 4u);
  EXPECT_EQ(lemma31_required_matching(7), 4u);
}

class EncoderCert
    : public ::testing::TestWithParam<std::tuple<std::size_t, Side>> {};

TEST_P(EncoderCert, AllLemmasHold) {
  const auto [index, side] = GetParam();
  const auto algorithms = bilinear::all_fast_2x2_algorithms();
  const BilinearAlgorithm& alg = algorithms[index];
  const EncoderCertificate cert = certify_encoder(alg, side);
  EXPECT_TRUE(cert.lemma31_matching) << alg.name() << ": " << cert.failure;
  EXPECT_TRUE(cert.lemma32_degrees) << alg.name() << ": " << cert.failure;
  EXPECT_TRUE(cert.lemma32_pairs) << alg.name() << ": " << cert.failure;
  EXPECT_TRUE(cert.lemma33_distinct) << alg.name() << ": " << cert.failure;
  EXPECT_TRUE(cert.all_pass());
}

INSTANTIATE_TEST_SUITE_P(
    AllFast2x2BothSides, EncoderCert,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 3, 4),
                       ::testing::Values(Side::kA, Side::kB)));

TEST(EncoderCertDetail, Lemma31TightForSomeSubset) {
  // The bound 1 + ceil((|Y'|-1)/2) is achieved with equality for some Y'
  // on Strassen's encoder (otherwise the lemma would be improvable).
  const EncoderCertificate cert =
      certify_encoder(bilinear::strassen(), Side::kA);
  EXPECT_EQ(cert.min_matching_slack, 0);
}

TEST(EncoderCertDetail, AltBasisSparseEncoderViolatesLemma32) {
  // The *transformed* algorithm of Section IV is not itself a plain
  // 2x2 bilinear matmul algorithm: its encoder can have inputs used only
  // once.  The paper handles it through Theorem 4.1 instead — our
  // certifier must detect the difference rather than silently pass.
  // Build a synthetic encoder with a degree-1 input: replace U by the
  // identity-padded matrix.
  bilinear::IntMat u(7, 4);
  for (std::size_t r = 0; r < 7; ++r) {
    u.at(r, r % 4) = 1;  // each input used at most twice, input 3 once
  }
  const BilinearAlgorithm fake("fake", 2, 2, 2, u,
                               bilinear::strassen().v(),
                               bilinear::strassen().w());
  const EncoderCertificate cert = certify_encoder(fake, Side::kA);
  EXPECT_FALSE(cert.lemma33_distinct);  // duplicated supports
  EXPECT_FALSE(cert.all_pass());
  EXPECT_FALSE(cert.failure.empty());
}

TEST(EncoderCertDetail, DetectsDuplicateSupports) {
  // Duplicate two product rows: Lemma 3.3 must fail.
  bilinear::IntMat u = bilinear::strassen().u();
  for (std::size_t c = 0; c < 4; ++c) {
    u.at(1, c) = u.at(0, c);
  }
  const BilinearAlgorithm fake("dup", 2, 2, 2, u, bilinear::strassen().v(),
                               bilinear::strassen().w());
  const EncoderCertificate cert = certify_encoder(fake, Side::kA);
  EXPECT_FALSE(cert.lemma33_distinct);
}

TEST(EncoderCertDetail, RequiresFourInputs) {
  EXPECT_THROW(certify_encoder(bilinear::strassen_squared(), Side::kA),
               CheckError);
}

TEST(EncoderCertDetail, ClassicEightProductEncoderFailsAsExpected) {
  // The lemmas characterize OPTIMAL (7-product) algorithms.  The
  // classical 2x2x2 encoder has pairs of products with identical A-side
  // supports (A11*B11 and A11*B12), so Lemma 3.3 fails; and with 8
  // products the Lemma 3.1 requirement 1 + ceil(7/2) = 5 exceeds |X| = 4,
  // so the matching bound fails too.  Degrees and pair coverage do hold.
  const EncoderCertificate cert =
      certify_encoder(bilinear::classic(2, 2, 2), Side::kA);
  EXPECT_TRUE(cert.lemma32_degrees);
  EXPECT_TRUE(cert.lemma32_pairs);
  EXPECT_FALSE(cert.lemma33_distinct);
  EXPECT_FALSE(cert.lemma31_matching);
}

TEST(HopcroftKerr, NineSets) {
  const auto& sets = hopcroft_kerr_sets();
  EXPECT_EQ(sets.size(), 9u);
  for (const auto& set : sets) {
    EXPECT_FALSE(set.label.empty());
    for (const auto& form : set.forms) {
      int nnz = 0;
      for (const int c : form) {
        EXPECT_TRUE(c == 0 || c == 1);
        nnz += (c != 0);
      }
      EXPECT_GE(nnz, 1);
    }
  }
}

TEST(HopcroftKerr, AllCatalogAlgorithmsPass) {
  for (const auto& alg : bilinear::all_fast_2x2_algorithms()) {
    const HopcroftKerrCertificate cert = certify_hopcroft_kerr(alg);
    EXPECT_TRUE(cert.pass) << alg.name() << ": " << cert.failure;
    for (const std::size_t usage : cert.usage) {
      EXPECT_LE(usage, 1u) << alg.name();
    }
  }
}

TEST(HopcroftKerr, StrassenUsageProfile) {
  // Strassen uses A11 (set S0), A11+A22 (sets S3, S4, S6), A22 (S8) ...
  const HopcroftKerrCertificate cert =
      certify_hopcroft_kerr(bilinear::strassen());
  ASSERT_TRUE(cert.pass);
  EXPECT_EQ(cert.usage[0], 1u);  // A11 = M3's operand
  EXPECT_EQ(cert.usage[8], 1u);  // A22 = M4's operand
}

TEST(HopcroftKerr, EightProductAlgorithmHasSlack) {
  // For the classical algorithm (t = 8) the budget is t - 6 = 2 per set.
  const HopcroftKerrCertificate cert =
      certify_hopcroft_kerr(bilinear::classic(2, 2, 2));
  EXPECT_TRUE(cert.pass);
}

TEST(HopcroftKerr, ViolationDetected) {
  // Force two products with operands from set S0: {A11, A12+A21}.
  bilinear::IntMat u = bilinear::strassen().u();
  // Row 0 := A12 + A21 (M3 row 2 is already A11) — set S0 used twice.
  u.at(0, 0) = 0;
  u.at(0, 1) = 1;
  u.at(0, 2) = 1;
  u.at(0, 3) = 0;
  const BilinearAlgorithm fake("hk-violator", 2, 2, 2, u,
                               bilinear::strassen().v(),
                               bilinear::strassen().w());
  const HopcroftKerrCertificate cert = certify_hopcroft_kerr(fake);
  EXPECT_FALSE(cert.pass);
  EXPECT_GE(cert.usage[0], 2u);
}

TEST(HopcroftKerr, SignInsensitive) {
  // Negating a U row must not change set membership counting.
  bilinear::IntMat u = bilinear::strassen().u();
  for (std::size_t c = 0; c < 4; ++c) {
    u.at(2, c) = -u.at(2, c);  // M3: A11 -> -A11
  }
  const BilinearAlgorithm fake("neg", 2, 2, 2, u, bilinear::strassen().v(),
                               bilinear::strassen().w());
  const HopcroftKerrCertificate cert = certify_hopcroft_kerr(fake);
  EXPECT_EQ(cert.usage[0], 1u);
}

}  // namespace
}  // namespace fmm::bounds
