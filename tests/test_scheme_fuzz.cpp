// Property/fuzz battery for the scheme loader (bilinear/scheme.hpp): a
// seeded mutator corrupts every zoo file — flipping one coefficient
// digit, dropping a required scalar field, or breaking the JSON
// structure outright — and load_scheme_file must REFUSE every mutant
// with a single-line CheckError (the Brent verifier catches coefficient
// flips; the parser catches the rest).  No mutant may crash the loader
// and no mutant may be accepted.  Runs under the sanitize preset in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bilinear/scheme.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace fmm::bilinear {
namespace {

std::string zoo_path(const std::string& file) {
  return std::string(FMM_SOURCE_ROOT) + "/schemes/" + file;
}

const std::vector<std::string>& zoo_files() {
  static const std::vector<std::string> files = {
      "strassen_222_7.json",
      "hk_style_222_7.json",
      "laderman_333_23.json",
      "rect_336_46.json",
  };
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string write_mutant(const std::string& text, const std::string& tag) {
  const std::string path =
      std::string(testing::TempDir()) + "fuzz_" + tag + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  return path;
}

/// Flips one coefficient digit inside the u/v/w matrix region (after
/// the `"u"` key, so name/n/m/p/rank stay intact).  The Brent identity
/// pins every coefficient, so any flip must be refused by the verifier.
std::string flip_coefficient(const std::string& text, Rng& rng) {
  const std::size_t matrices = text.find("\"u\"");
  EXPECT_NE(matrices, std::string::npos);
  std::vector<std::size_t> digit_positions;
  for (std::size_t i = matrices; i < text.size(); ++i) {
    if (text[i] >= '0' && text[i] <= '9') {
      digit_positions.push_back(i);
    }
  }
  EXPECT_FALSE(digit_positions.empty());
  std::string mutant = text;
  const std::size_t pos =
      digit_positions[rng.uniform(digit_positions.size())];
  const char digit = mutant[pos];
  mutant[pos] = digit == '9' ? '0' : static_cast<char>(digit + 1);
  return mutant;
}

/// Removes the whole line carrying one required scalar field — the
/// pretty-printed zoo keeps one scalar per line, so this is a clean
/// "field missing" mutation the parser must reject.
std::string drop_field(const std::string& text, Rng& rng) {
  static const std::vector<std::string> fields = {
      "\"schema\"", "\"schema_version\"", "\"name\"",
      "\"n\"",      "\"m\"",              "\"p\"",
      "\"rank\"",
  };
  const std::string& field = fields[rng.uniform(fields.size())];
  const std::size_t key = text.find(field);
  EXPECT_NE(key, std::string::npos) << field;
  const std::size_t line_start = text.rfind('\n', key);
  const std::size_t line_end = text.find('\n', key);
  EXPECT_NE(line_start, std::string::npos);
  EXPECT_NE(line_end, std::string::npos);
  return text.substr(0, line_start) + text.substr(line_end);
}

/// Structural corruption: truncate mid-document or knock out one
/// syntax-bearing character ({ } [ ] , ").
std::string corrupt_structure(const std::string& text, Rng& rng) {
  if (rng.uniform(2) == 0) {
    const std::size_t keep = 1 + rng.uniform(text.size() - 2);
    return text.substr(0, keep);
  }
  std::vector<std::size_t> syntax_positions;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '{' || ch == '}' || ch == '[' || ch == ']' || ch == ',' ||
        ch == '"') {
      syntax_positions.push_back(i);
    }
  }
  EXPECT_FALSE(syntax_positions.empty());
  std::string mutant = text;
  mutant.erase(syntax_positions[rng.uniform(syntax_positions.size())],
               1);
  return mutant;
}

void expect_refused(const std::string& mutant, const std::string& tag) {
  SCOPED_TRACE(tag);
  const std::string path = write_mutant(mutant, tag);
  try {
    (void)load_scheme_file(path);
    FAIL() << "mutant was ACCEPTED: " << tag;
  } catch (const CheckError& e) {
    // One actionable line: usable verbatim as a usage_error message.
    const std::string what = e.what();
    EXPECT_FALSE(what.empty());
    EXPECT_EQ(what.find('\n'), std::string::npos)
        << "multi-line refusal: " << what;
  }
  std::remove(path.c_str());
}

TEST(SchemeFuzz, CoefficientFlipsAreRefusedByBrentVerifier) {
  for (const std::string& file : zoo_files()) {
    const std::string text = slurp(zoo_path(file));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      expect_refused(flip_coefficient(text, rng),
                     file + "_flip_seed" + std::to_string(seed));
    }
  }
}

TEST(SchemeFuzz, DroppedFieldsAreRefused) {
  for (const std::string& file : zoo_files()) {
    const std::string text = slurp(zoo_path(file));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      expect_refused(drop_field(text, rng),
                     file + "_drop_seed" + std::to_string(seed));
    }
  }
}

TEST(SchemeFuzz, StructuralCorruptionIsRefused) {
  for (const std::string& file : zoo_files()) {
    const std::string text = slurp(zoo_path(file));
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed);
      expect_refused(corrupt_structure(text, rng),
                     file + "_struct_seed" + std::to_string(seed));
    }
  }
}

TEST(SchemeFuzz, PristineZooStillLoads) {
  // Sanity anchor for the battery above: the unmutated files verify,
  // so every refusal really is caused by the mutation.
  for (const std::string& file : zoo_files()) {
    EXPECT_NO_THROW((void)load_scheme_file(zoo_path(file))) << file;
  }
}

}  // namespace
}  // namespace fmm::bilinear
