// Concurrency stress battery for the upgraded parallel::ThreadPool:
// exception capture (the old contract terminated on throw), cooperative
// cancellation, recursive submission, and wait_idle() under contention.
// Run under the tsan preset (FMM_SANITIZE=thread) in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "parallel/thread_pool.hpp"

namespace fmm::parallel {
namespace {

TEST(ThreadPoolStress, TenThousandNoOpTasks) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10000);
}

TEST(ThreadPoolStress, TasksSubmittingTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  // Each root task fans out children from inside a worker; wait_idle must
  // cover the dynamically grown frontier.
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1);
      for (int j = 0; j < 8; ++j) {
        pool.submit([&pool, &counter] {
          counter.fetch_add(1);
          pool.submit([&counter] { counter.fetch_add(1); });
        });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 16 * (1 + 8 * 2));
}

TEST(ThreadPoolStress, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool is reusable and clean afterwards.
  EXPECT_FALSE(pool.has_pending_exception());
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolStress, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] {
      ran.fetch_add(1);
      throw CheckError("repeated failure");
    });
  }
  // Exactly one rethrow; every task still ran (no terminate, no drops).
  EXPECT_THROW(pool.wait_idle(), CheckError);
  EXPECT_EQ(ran.load(), 64);
  pool.wait_idle();  // second wait is clean
}

TEST(ThreadPoolStress, ThrowingTaskDoesNotTerminateAtDestruction) {
  // Regression for the documented footgun: a throwing task used to call
  // std::terminate.  Destroying a pool with a captured-but-unretrieved
  // exception must be safe.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("never retrieved"); });
  // No wait_idle(): the destructor drains and must swallow the error.
}

TEST(ThreadPoolStress, WaitIdleUnderContention) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  // Several caller threads wait concurrently; all must observe the fully
  // drained pool.
  std::vector<std::thread> waiters;
  std::atomic<int> woke{0};
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&pool, &woke, &counter] {
      pool.wait_idle();
      EXPECT_EQ(counter.load(), 500);
      woke.fetch_add(1);
    });
  }
  for (auto& w : waiters) {
    w.join();
  }
  EXPECT_EQ(woke.load(), 6);
}

TEST(ThreadPoolStress, CancelPendingDropsQueuedTasks) {
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  // First task blocks the single worker, so the rest stay queued.
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    ran.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  // Give the worker a moment to pick up the blocker (the queue length
  // assertion below is >= 99 to stay robust either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const std::size_t dropped = pool.cancel_pending();
  EXPECT_GE(dropped, 99u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.wait_idle();
  EXPECT_EQ(ran.load() + static_cast<int>(dropped), 101);
}

TEST(ThreadPoolStress, CancellationTokenIsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ThreadPoolStress, CooperativeCancellationMidQueue) {
  ThreadPool pool(2);
  CancellationToken token;
  std::atomic<int> executed{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&token, &executed, i] {
      if (token.cancelled()) {
        return;
      }
      executed.fetch_add(1);
      if (i == 10) {
        token.cancel();
      }
    });
  }
  pool.wait_idle();
  // At least the triggering task ran; once the token flipped, the tail of
  // the queue was skipped (can't assert an exact count — workers race the
  // flag — but a full run of 1000 would mean cancellation never took).
  EXPECT_GE(executed.load(), 11);
  EXPECT_LT(executed.load(), 1000);
}

TEST(ThreadPoolStress, ManyWaitCyclesReuse) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

}  // namespace
}  // namespace fmm::parallel
