// Query service battery: the content-addressed cache under concurrent
// hit/miss/eviction stress, single-flight CDAG builds, and the
// protocol-level contracts of QueryService — one-line usage errors,
// byte-identical responses regardless of cache state / thread count /
// interleaving, deterministic virtual-clock deadlines, queue_full
// backpressure, and graceful drain (no admitted request is ever
// dropped).  The ServiceCache and QueryService suites run under the
// tsan preset (CMakePresets.json test filter).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cdag/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "sweep/sweep.hpp"

namespace fmm::service {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

// --- ServiceCache ----------------------------------------------------

TEST(ServiceCache, KeysAreContentAddressed) {
  EXPECT_EQ(ContentCache::cdag_key("strassen", 8),
            ContentCache::cdag_key("strassen", 8));
  EXPECT_NE(ContentCache::cdag_key("strassen", 8),
            ContentCache::cdag_key("strassen", 16));
  EXPECT_NE(ContentCache::cdag_key("strassen", 8),
            ContentCache::cdag_key("winograd", 8));
  EXPECT_EQ(ContentCache::result_key("a"), ContentCache::result_key("a"));
  EXPECT_NE(ContentCache::result_key("a"), ContentCache::result_key("b"));
}

TEST(ServiceCache, PayloadRoundTrip) {
  obs::Registry::instance().reset();
  ContentCache cache;
  const std::string key = ContentCache::result_key("some request");
  EXPECT_EQ(cache.get_payload(key), nullptr);
  cache.put_payload(key, "{\"x\": 1}");
  const auto hit = cache.get_payload(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "{\"x\": 1}");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(ServiceCache, ZeroBudgetDisablesRetention) {
  obs::Registry::instance().reset();
  CacheConfig config;
  config.memory_budget_bytes = 0;
  ContentCache cache(config);
  cache.put_payload("result/deadbeef", "payload");
  EXPECT_EQ(cache.get_payload("result/deadbeef"), nullptr);
  std::atomic<int> builds{0};
  const auto build = [&] {
    ++builds;
    return cdag::build_cdag(sweep::resolve_algorithm("strassen"), 4);
  };
  const std::string key = ContentCache::cdag_key("strassen", 4);
  EXPECT_NE(cache.get_or_build_cdag(key, build), nullptr);
  EXPECT_NE(cache.get_or_build_cdag(key, build), nullptr);
  EXPECT_EQ(builds.load(), 2) << "zero budget must not retain CDAGs";
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.hits, 0);
}

TEST(ServiceCache, EvictsOldestButNeverTheNewEntry) {
  obs::Registry::instance().reset();
  CacheConfig config;
  config.shards = 1;  // all keys in one LRU so recency order is total
  config.memory_budget_bytes = 1;  // any entry is oversized
  ContentCache cache(config);
  cache.put_payload("result/a", "aaaa");
  cache.put_payload("result/b", "bbbb");
  // The oversized newcomer is admitted alone instead of thrashing.
  EXPECT_EQ(cache.get_payload("result/a"), nullptr);
  ASSERT_NE(cache.get_payload("result/b"), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(ServiceCache, SingleFlightBuildsOnce) {
  obs::Registry::instance().reset();
  ContentCache cache;
  const std::string key = ContentCache::cdag_key("strassen", 8);
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const cdag::Cdag>> got(8);
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      got[t] = cache.get_or_build_cdag(key, [&] {
        ++builds;
        return cdag::build_cdag(sweep::resolve_algorithm("strassen"), 8);
      });
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(builds.load(), 1)
      << "concurrent requests for one key must share one build";
  for (const auto& cdag : got) {
    ASSERT_NE(cdag, nullptr);
    EXPECT_EQ(cdag.get(), got[0].get()) << "all callers share the object";
  }
}

TEST(ServiceCache, FailedBuildCachesNothingAndUnblocksWaiters) {
  obs::Registry::instance().reset();
  ContentCache cache;
  const std::string key = ContentCache::cdag_key("strassen", 4);
  EXPECT_THROW(
      cache.get_or_build_cdag(
          key, []() -> cdag::Cdag { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0);
  // The key is not poisoned: the next build succeeds normally.
  const auto built = cache.get_or_build_cdag(key, [] {
    return cdag::build_cdag(sweep::resolve_algorithm("strassen"), 4);
  });
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(built->n, 4u);
}

TEST(ServiceCache, HitMissEvictStress) {
  obs::Registry::instance().reset();
  CacheConfig config;
  config.shards = 4;
  config.memory_budget_bytes = 2048;  // tiny: constant eviction churn
  ContentCache cache(config);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<std::int64_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 16 overlapping keys across 8 threads: plenty of hit/miss/evict
        // interleavings on every shard.
        const std::string key =
            ContentCache::result_key("stress/" + std::to_string((t + i) % 16));
        if (const auto hit = cache.get_payload(key)) {
          ++observed_hits;
          EXPECT_EQ(hit->size(), 64u);
        } else {
          cache.put_payload(key, std::string(64, 'x'));
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::int64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_GT(stats.evictions, 0) << "a 2 KiB budget must evict";
  EXPECT_LE(stats.bytes, 2048 + 4 * (64 + 128))
      << "bytes may exceed budget only by per-shard oversize slack";
  EXPECT_GE(stats.entries, 0);
}

// --- QueryService ----------------------------------------------------

TEST(QueryService, UsageErrorsAreOneLine) {
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 1;
  service::QueryService service(config);
  const std::vector<std::string> bad = {
      "not json at all",
      "{\"op\": \"frobnicate\"}",
      "{\"op\": \"simulate\", \"algorithm\": \"strassen\", \"n\": 3, "
      "\"m\": 8}",
      "{\"op\": \"simulate\", \"algorithm\": \"strassen\", \"n\": 8, "
      "\"m\": 8, \"bogus\": 1}",
      "{\"op\": \"bound\", \"n\": 8}",
      "{\"op\": \"ping\", \"n\": 8}",
  };
  for (const std::string& line : bad) {
    const std::string response = service.handle_line(line);
    EXPECT_EQ(response.find('\n'), std::string::npos) << response;
    EXPECT_NE(response.find("\"ok\": false"), std::string::npos) << response;
    EXPECT_NE(response.find("usage_error: "), std::string::npos) << response;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(bad.size()));
  EXPECT_EQ(stats.errors, static_cast<std::int64_t>(bad.size()));
  EXPECT_EQ(stats.responded, stats.requests);
}

TEST(QueryService, ByteIdenticalAcrossCacheStatesAndThreadCounts) {
  const std::vector<std::string> requests = {
      "{\"op\": \"bound\", \"n\": 1024, \"m\": 64, \"p\": 49}",
      "{\"op\": \"simulate\", \"algorithm\": \"strassen\", \"n\": 8, "
      "\"m\": 32, \"schedule\": \"random\", \"seed\": 7}",
      "{\"op\": \"liveness\", \"algorithm\": \"winograd\", \"n\": 8}",
      "{\"op\": \"cdag\", \"algorithm\": \"strassen\", \"n\": 4}",
  };
  // Cold reference: zero budget, so every answer is recomputed.
  std::vector<std::string> reference;
  {
    obs::Registry::instance().reset();
    ServiceConfig config;
    config.num_threads = 1;
    config.cache.memory_budget_bytes = 0;
    service::QueryService cold(config);
    for (const std::string& line : requests) {
      reference.push_back(cold.handle_line(line));
    }
  }
  for (const std::size_t threads : {1u, 4u}) {
    obs::Registry::instance().reset();
    ServiceConfig config;
    config.num_threads = threads;
    service::QueryService warm(config);
    // Three passes: miss, hit, hit — all byte-identical to the cold run.
    for (int pass = 0; pass < 3; ++pass) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(warm.handle_line(requests[i]), reference[i])
            << "request " << i << " pass " << pass << " threads "
            << threads;
      }
    }
    EXPECT_GT(warm.cache().stats().hits, 0) << "warm passes must hit";
  }
}

TEST(QueryService, ServeAnswersInRequestOrder) {
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 4;
  service::QueryService service(config);
  std::ostringstream session;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    // Alternate cheap and expensive ops so pool completion order is
    // scrambled relative to request order.
    if (i % 2 == 0) {
      session << "{\"id\": " << i << ", \"op\": \"bound\", \"n\": 64, "
              << "\"m\": " << (8 + i) << "}\n";
    } else {
      session << "{\"id\": " << i
              << ", \"op\": \"simulate\", \"algorithm\": \"strassen\", "
              << "\"n\": 16, \"m\": " << (16 + i) << "}\n";
    }
  }
  std::istringstream in(session.str());
  std::ostringstream out;
  EXPECT_FALSE(service.serve(in, out)) << "EOF, not shutdown";
  const std::vector<std::string> responses = lines_of(out.str());
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const std::string want_id = "{\"id\": " + std::to_string(i) + ",";
    EXPECT_EQ(responses[i].compare(0, want_id.size(), want_id), 0)
        << "response " << i << " out of order: " << responses[i];
    EXPECT_NE(responses[i].find("\"ok\": true"), std::string::npos)
        << responses[i];
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.responded, kRequests) << "drain must answer everything";
}

TEST(QueryService, DeadlineExceededIsDeterministic) {
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 1;
  // 8·8^log2(n) ticks: n=4 costs 512, n=16 costs 32768.  A deadline of
  // 1000 admits exactly the n=4 request — a pure function of (config,
  // request), never of load.
  config.deadline_ticks = 1000;
  service::QueryService service(config);
  const std::string small =
      "{\"op\": \"cdag\", \"algorithm\": \"strassen\", \"n\": 4}";
  const std::string large =
      "{\"op\": \"cdag\", \"algorithm\": \"strassen\", \"n\": 16}";
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_NE(service.handle_line(small).find("\"ok\": true"),
              std::string::npos);
    const std::string rejected = service.handle_line(large);
    EXPECT_NE(rejected.find("deadline_exceeded: "), std::string::npos)
        << rejected;
    EXPECT_NE(rejected.find("32768"), std::string::npos)
        << "estimate must be spelled out: " << rejected;
  }
  EXPECT_EQ(service.stats().deadline_exceeded, 3);
  // Closed-form ops cost 1 tick and always pass the same deadline.
  EXPECT_NE(service
                .handle_line("{\"op\": \"bound\", \"n\": 1048576, "
                             "\"m\": 1024}")
                .find("\"ok\": true"),
            std::string::npos);
}

TEST(QueryService, QueueFullRejectionAtZeroCapacity) {
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 2;
  config.max_queue = 0;  // deterministic: every compute request rejects
  service::QueryService service(config);
  std::istringstream in(
      "{\"id\": 1, \"op\": \"ping\"}\n"
      "{\"id\": 2, \"op\": \"bound\", \"n\": 64, \"m\": 8}\n"
      "{\"id\": 3, \"op\": \"simulate\", \"algorithm\": \"strassen\", "
      "\"n\": 8, \"m\": 32}\n");
  std::ostringstream out;
  service.serve(in, out);
  const std::vector<std::string> responses = lines_of(out.str());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[0].find("\"pong\": true"), std::string::npos)
      << "control ops bypass the queue: " << responses[0];
  for (int i = 1; i < 3; ++i) {
    EXPECT_NE(responses[i].find("rejected: queue_full"), std::string::npos)
        << responses[i];
  }
  EXPECT_EQ(service.stats().rejected_queue_full, 2);
}

TEST(QueryService, ShutdownDrainsEveryInFlightRequest) {
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 4;
  service::QueryService service(config);
  std::ostringstream session;
  constexpr int kCompute = 12;
  for (int i = 0; i < kCompute; ++i) {
    session << "{\"id\": " << i
            << ", \"op\": \"simulate\", \"algorithm\": \"winograd\", "
            << "\"n\": 16, \"m\": " << (16 + i) << "}\n";
  }
  session << "{\"id\": 99, \"op\": \"shutdown\"}\n";
  session << "{\"id\": 100, \"op\": \"ping\"}\n";  // after shutdown: unread
  std::istringstream in(session.str());
  std::ostringstream out;
  EXPECT_TRUE(service.serve(in, out)) << "shutdown op, not EOF";
  const std::vector<std::string> responses = lines_of(out.str());
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kCompute) + 1)
      << "every admitted request answered, nothing after shutdown";
  std::set<std::string> ids;
  for (int i = 0; i < kCompute; ++i) {
    EXPECT_NE(responses[i].find("\"ok\": true"), std::string::npos)
        << "in-flight request dropped by shutdown: " << responses[i];
  }
  EXPECT_NE(responses.back().find("\"draining\": true"), std::string::npos);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kCompute + 1);
  EXPECT_EQ(stats.responded, stats.requests);
  EXPECT_EQ(stats.errors, 0);
}

TEST(QueryService, StatsAndReportSectionStayConsistent) {
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 2;
  service::QueryService service(config);
  std::istringstream in(
      "{\"op\": \"ping\"}\n"
      "{\"op\": \"bound\", \"n\": 64, \"m\": 8}\n"
      "{\"op\": \"bound\", \"n\": 64, \"m\": 8}\n"
      "garbage\n"
      "{\"op\": \"stats\"}\n");
  std::ostringstream out;
  service.serve(in, out);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 5);
  EXPECT_EQ(stats.responded, 5);
  EXPECT_EQ(stats.ok, 4);
  EXPECT_EQ(stats.errors, 1);
  // The duplicate bound request is a result-cache hit.
  EXPECT_GE(service.cache().stats().hits, 1);
  const std::string section = service.service_json();
  EXPECT_NE(section.find("\"schema\": \"fmm.service\""), std::string::npos);
  EXPECT_NE(section.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(section.find("{\"op\": \"bound\", \"requests\": 2, "
                         "\"ok\": 2, \"errors\": 0}"),
            std::string::npos)
      << section;
  EXPECT_NE(section.find("{\"op\": \"invalid\", \"requests\": 1, "
                         "\"ok\": 0, \"errors\": 1}"),
            std::string::npos)
      << section;
  obs::RunReport report("test.service");
  service.attach_to(report);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"service\": {"), std::string::npos);
  EXPECT_NE(json.find("\"meta\": {\"build\": {"), std::string::npos)
      << "every report must carry build provenance";
}

TEST(QueryService, SweepSharesTheCdagCache) {
  obs::Registry::instance().reset();
  ContentCache cache;
  CachingCdagSource source(cache);
  sweep::SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {8};
  spec.m_grid = {16, 32, 64};
  spec.kinds = {sweep::TaskKind::kSimulate};
  spec.num_threads = 2;
  const sweep::SweepResult first = sweep::run_sweep(spec, source);
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(cache.stats().entries, 1) << "one (strassen, 8) CDAG retained";
  const std::int64_t misses_after_first = cache.stats().misses;
  // A second sweep over the same grid reuses the retained CDAG.
  const sweep::SweepResult second = sweep::run_sweep(spec, source);
  EXPECT_EQ(second.to_json(), first.to_json());
  EXPECT_EQ(cache.stats().misses, misses_after_first)
      << "warm sweep must not rebuild the CDAG";
  EXPECT_GT(cache.stats().hits, 0);
}

}  // namespace
}  // namespace fmm::service
