// Tests for the closed-form lower bounds of Table I / Theorem 1.1.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/formulas.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fmm::bounds {
namespace {

TEST(Classic, SequentialValue) {
  // (n/sqrt(M))^3 * M with n=64, M=16: (64/4)^3 * 16 = 65536.
  EXPECT_NEAR(classic_memory_dependent({64, 16, 1}), 65536.0, 1e-6);
}

TEST(Classic, MemoryIndependentValue) {
  // n^2 / P^{2/3} with n=64, P=8: 4096 / 4 = 1024.
  EXPECT_NEAR(classic_memory_independent({64, 16, 8}), 1024.0, 1e-6);
}

TEST(Fast, SequentialStrassenValue) {
  // (n/sqrt(M))^{log2 7} * M with n = 64, M = 16: 16^{2.807..} * 16.
  const double expected = std::pow(16.0, kOmega0) * 16.0;
  EXPECT_NEAR(fast_memory_dependent({64, 16, 1}, kOmega0), expected, 1e-6);
}

TEST(Fast, MemoryIndependentValue) {
  // n^2 / P^{2/log2 7} with P = 7^3: exponent 2/log2(7)*log2(343)... use
  // direct computation.
  const double expected = 64.0 * 64.0 / std::pow(343.0, 2.0 / kOmega0);
  EXPECT_NEAR(fast_memory_independent({64, 16, 343}, kOmega0), expected,
              1e-6);
}

TEST(Params, FromIntsMatchesDoubleConstruction) {
  const MmParams p = mm_params_from_ints(64, 16, 343);
  EXPECT_DOUBLE_EQ(p.n, 64.0);
  EXPECT_DOUBLE_EQ(p.m, 16.0);
  EXPECT_DOUBLE_EQ(p.p, 343.0);
  const MmParams seq = mm_params_from_ints(1024, 256);
  EXPECT_DOUBLE_EQ(seq.p, 1.0);
}

TEST(Params, FromIntsRejectsNonPositiveAndOverflowing) {
  EXPECT_THROW(mm_params_from_ints(0, 16), CheckError);
  EXPECT_THROW(mm_params_from_ints(64, 0), CheckError);
  EXPECT_THROW(mm_params_from_ints(64, 16, 0), CheckError);
  // n^3-scale counts must fit int64: n = 2^21 cubes to 2^63.
  EXPECT_THROW(mm_params_from_ints(std::int64_t{1} << 21, 16), CheckError);
  // n*M overflow with representable n^3.
  EXPECT_THROW(mm_params_from_ints(1 << 20, std::int64_t{1} << 62),
               CheckError);
}

TEST(Fast, FastBelowClassicSequential) {
  // The fast bound is asymptotically lower: exponent log2 7 < 3.
  for (const double n : {256.0, 1024.0, 4096.0}) {
    const MmParams p{n, 64, 1};
    EXPECT_LT(fast_memory_dependent(p, kOmega0),
              classic_memory_dependent(p));
  }
}

TEST(Fast, ParallelBoundIsMax) {
  const MmParams p{1024, 256, 49};
  EXPECT_DOUBLE_EQ(fast_parallel_bound(p, kOmega0),
                   std::max(fast_memory_dependent(p, kOmega0),
                            fast_memory_independent(p, kOmega0)));
}

TEST(Fast, CrossoverPoint) {
  // At P = P*, the two bounds are equal; before it memory-dependent
  // dominates, after it memory-independent dominates.
  const double n = 4096, m = 1024;
  const double p_star = parallel_crossover_p(n, m, kOmega0);
  EXPECT_GT(p_star, 1.0);
  const MmParams at{n, m, p_star};
  EXPECT_NEAR(fast_memory_dependent(at, kOmega0),
              fast_memory_independent(at, kOmega0),
              fast_memory_dependent(at, kOmega0) * 1e-9);
  const MmParams before{n, m, p_star / 4};
  EXPECT_GT(fast_memory_dependent(before, kOmega0),
            fast_memory_independent(before, kOmega0));
  const MmParams after{n, m, p_star * 4};
  EXPECT_LT(fast_memory_dependent(after, kOmega0),
            fast_memory_independent(after, kOmega0));
}

TEST(Fast, MemoryDependentDecreasesWithM) {
  // For n^2 >> M the bound decreases as M grows (exponent > 2).
  double prev = 1e300;
  for (const double m : {16.0, 64.0, 256.0, 1024.0}) {
    const double value = fast_memory_dependent({4096, m, 1}, kOmega0);
    EXPECT_LT(value, prev);
    prev = value;
  }
}

TEST(Fast, ScalesInverselyWithP) {
  const double one = fast_memory_dependent({1024, 64, 1}, kOmega0);
  const double seven = fast_memory_dependent({1024, 64, 7}, kOmega0);
  EXPECT_NEAR(one / seven, 7.0, 1e-9);
}

TEST(Fast, InvalidParamsThrow) {
  EXPECT_THROW(fast_memory_dependent({0, 16, 1}, kOmega0), CheckError);
  EXPECT_THROW(fast_memory_dependent({16, 0, 1}, kOmega0), CheckError);
  EXPECT_THROW(fast_memory_dependent({16, 16, 0}, kOmega0), CheckError);
  EXPECT_THROW(fast_memory_dependent({16, 16, 1}, 2.0), CheckError);
}

TEST(Rectangular, TableIFormula) {
  // q^t / (P * M^{log_mp q - 1}).
  const double v = rectangular_bound(2, 4, 14, 3, 64, 1);
  const double log_mp_q = std::log(14.0) / std::log(8.0);
  EXPECT_NEAR(v, std::pow(14.0, 3.0) / std::pow(64.0, log_mp_q - 1.0),
              1e-9);
}

TEST(Rectangular, GrowsWithLevels) {
  double prev = 0;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    const double v = rectangular_bound(2, 4, 14, t, 64, 1);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Fft, MemoryDependentValue) {
  // n log n / (P log M): 1024*10 / (1*4) = 2560.
  EXPECT_NEAR(fft_memory_dependent(1024, 16, 1), 2560.0, 1e-9);
}

TEST(Fft, MemoryIndependentValue) {
  // n log n / (P log(n/P)): 1024*10/(4*8) = 320.
  EXPECT_NEAR(fft_memory_independent(1024, 4), 320.0, 1e-9);
}

TEST(Fft, RequiresNBiggerThanP) {
  EXPECT_THROW(fft_memory_independent(16, 16), CheckError);
}

TEST(Flops, StrassenLeadingTerm) {
  // fast_flops(n, 18) = 7 n^{log2 7} - 6 n^2.
  const double n = 1024;
  EXPECT_NEAR(fast_flops(n, 18),
              7.0 * std::pow(n, kOmega0) - 6.0 * n * n, 1e-3);
}

TEST(Flops, OrderingByLinearOps) {
  // Fewer base linear ops -> fewer flops (5 < 6 < 7 coefficients).
  const double n = 4096;
  EXPECT_LT(fast_flops(n, 12), fast_flops(n, 15));
  EXPECT_LT(fast_flops(n, 15), fast_flops(n, 18));
}

TEST(Classic, SequentialMatchesFastWhenOmegaIsThree) {
  const MmParams p{512, 64, 1};
  EXPECT_NEAR(classic_memory_dependent(p), fast_memory_dependent(p, 3.0),
              1e-6);
}

}  // namespace
}  // namespace fmm::bounds
