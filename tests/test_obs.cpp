// Tests for the observability subsystem: metrics registry, Chrome
// trace-event tracer, run-report JSON writer, and their wiring into the
// pebble machine.  The suite is written to pass under BOTH compile modes
// of FMM_ENABLE_TRACING — the disabled-mode assertions (#else branches)
// check that tracing off means literally zero events and unchanged
// simulator behavior.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/timing.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"

namespace fmm::obs {
namespace {

// --- Minimal recursive-descent JSON validator -------------------------
//
// Just enough JSON to assert that the artifacts we emit parse: objects,
// arrays, strings with escapes, numbers, true/false/null.  Returns true
// iff the whole input is exactly one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start + (s_[start] == '-' ? 1u : 0u);
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) {
      return false;
    }
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

pebble::SimResult run_strassen(std::size_t n, std::int64_t m) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), n);
  pebble::SimOptions options;
  options.cache_size = m;
  return pebble::simulate(cdag, pebble::dfs_schedule(cdag), options);
}

// --- Metrics registry -------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  auto& registry = Registry::instance();
  registry.reset();
  auto& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name returns the same counter.
  EXPECT_EQ(registry.counter("test.counter").value(), 42);

  auto& g = registry.gauge("test.gauge");
  g.set(7);
  g.record_max(3);
  EXPECT_EQ(g.value(), 7);
  g.record_max(11);
  EXPECT_EQ(g.value(), 11);

  // Reset zeroes values but keeps references valid.
  registry.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, SnapshotIsSortedByName) {
  auto& registry = Registry::instance();
  registry.reset();
  registry.counter("zz.last").add(1);
  registry.counter("aa.first").add(2);
  const auto snap = registry.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap) {
    names.push_back(name);
  }
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LE(names[i - 1], names[i]);
  }
}

// Tentpole acceptance: registry counters must agree exactly with the
// pebble machine's own I/O accounting.
TEST(Metrics, PebbleCountersMatchSimResult) {
  auto& registry = Registry::instance();
  registry.reset();
  const auto result = run_strassen(8, 16);
  EXPECT_EQ(registry.counter("pebble.loads").value(), result.loads);
  EXPECT_EQ(registry.counter("pebble.stores").value(), result.stores);
  EXPECT_EQ(registry.counter("pebble.computations").value(),
            result.computations);
  EXPECT_EQ(registry.counter("pebble.simulations").value(), 1);

  // Counters accumulate across runs.
  const auto again = run_strassen(8, 16);
  EXPECT_EQ(registry.counter("pebble.loads").value(),
            result.loads + again.loads);
  EXPECT_EQ(registry.counter("pebble.simulations").value(), 2);
}

TEST(Metrics, ScopedTimerReportsIntoRegistry) {
  auto& registry = Registry::instance();
  registry.reset();
  {
    ScopedTimer timer("test.phase");
  }
  EXPECT_EQ(registry.counter("test.phase.calls").value(), 1);
  EXPECT_GE(registry.counter("test.phase.ns").value(), 0);
}

// --- Tracer -----------------------------------------------------------

TEST(Trace, SpansBalanceAndJsonParses) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  const bool active = enable_tracing_if_available();
#if FMM_TRACING_ENABLED
  EXPECT_TRUE(active);
  {
    FMM_TRACE_SPAN("outer", "test");
    FMM_TRACE_INSTANT("tick", "test");
    {
      FMM_TRACE_SPAN("inner", "test");
    }
  }
  EXPECT_EQ(tracer.num_events(), 5u);  // B i B E E

  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;

  // Spans balance: every 'B' has a matching 'E'.
  std::int64_t depth = 0;
  for (std::size_t i = 0; i + 5 < json.size(); ++i) {
    if (json.compare(i, 6, "\"ph\":\"") == 0) {
      const char ph = json[i + 6];
      if (ph == 'B') {
        ++depth;
      } else if (ph == 'E') {
        --depth;
        EXPECT_GE(depth, 0);
      }
    }
  }
  EXPECT_EQ(depth, 0);
#else
  // Tracing compiled out: enable is refused, macros are no-ops, and the
  // event buffer stays empty no matter what runs.
  EXPECT_FALSE(active);
  {
    FMM_TRACE_SPAN("outer", "test");
    FMM_TRACE_INSTANT("tick", "test");
  }
  EXPECT_EQ(tracer.num_events(), 0u);
#endif
  tracer.enable(false);
  tracer.clear();
}

TEST(Trace, SimulationEmitsEventsOnlyWhenEnabled) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable(false);

  // Tracer disabled at runtime: simulation records nothing.
  const auto quiet = run_strassen(8, 16);
  EXPECT_EQ(tracer.num_events(), 0u);

  const bool active = enable_tracing_if_available();
  const auto traced = run_strassen(8, 16);
#if FMM_TRACING_ENABLED
  EXPECT_TRUE(active);
  EXPECT_GT(tracer.num_events(), 0u);
#else
  EXPECT_FALSE(active);
  EXPECT_EQ(tracer.num_events(), 0u);
#endif

  // Tracing must not perturb the simulation itself.
  EXPECT_EQ(quiet.loads, traced.loads);
  EXPECT_EQ(quiet.stores, traced.stores);
  EXPECT_EQ(quiet.computations, traced.computations);

  tracer.enable(false);
  tracer.clear();
}

TEST(Trace, CapacityBoundsInstantsButKeepsSpans) {
#if FMM_TRACING_ENABLED
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable(true);
  tracer.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    FMM_TRACE_INSTANT("flood", "test");
  }
  EXPECT_EQ(tracer.num_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  {
    FMM_TRACE_SPAN("still-recorded", "test");  // spans bypass the cap
  }
  EXPECT_EQ(tracer.num_events(), 6u);
  tracer.enable(false);
  tracer.clear();
  tracer.set_capacity(std::size_t{1} << 18);
#endif
}

// --- Run report -------------------------------------------------------

TEST(RunReport, JsonShapeAndEscaping) {
  auto& registry = Registry::instance();
  registry.reset();
  registry.counter("pebble.loads").add(123);

  RunReport report("unit \"quoted\" name");
  report.set_param("algorithm", "strassen");
  report.set_param("n", std::int64_t{32});
  report.set_param("exact", true);
  report.add_phase_seconds("build", 0.25);
  report.add_bound_check("check/a", 100.0, 250.0);
  report.set_result("total_io", std::int64_t{250});
  report.attach_metrics_snapshot();

  const std::string json = report.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"fmm.run_report\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"pebble.loads\": 123"), std::string::npos);
  // Bound checks carry the measured/bound ratio.
  EXPECT_NE(json.find("\"ratio\": 2.5"), std::string::npos);
}

TEST(RunReport, NonFiniteValuesSerializeAsNull) {
  RunReport report("nonfinite");
  report.set_result("inf", std::numeric_limits<double>::infinity());
  report.set_result("nan", std::numeric_limits<double>::quiet_NaN());
  const std::string json = report.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
}

TEST(RunReport, CliParsing) {
  const char* argv[] = {"prog", "--out", "r.json", "--trace", "t.json",
                        "--seed", "9"};
  const ReportCli cli =
      parse_report_cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.out_path, "r.json");
  EXPECT_EQ(cli.trace_path, "t.json");
  EXPECT_EQ(cli.seed, 9u);
  EXPECT_TRUE(cli.wants_report());

  const char* bare[] = {"prog"};
  const ReportCli none = parse_report_cli(1, const_cast<char**>(bare));
  EXPECT_FALSE(none.wants_report());
  EXPECT_EQ(none.seed, 1u);
}

}  // namespace
}  // namespace fmm::obs
