// Unit tests for src/linalg: matrices, views, classical multiplication.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace fmm::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_EQ(m(0, 0), -2.0);
}

TEST(Matrix, FromRows) {
  const Mat m = Mat::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(Mat::from_rows({{1, 2}, {3}}), CheckError);
}

TEST(Matrix, Identity) {
  const Mat id = Mat::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AtBoundsChecked) {
  Mat m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), CheckError);
  EXPECT_THROW(m.at(0, 2), CheckError);
}

TEST(MatrixView, QuadrantDecomposition) {
  Mat m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m(i, j) = static_cast<double>(10 * i + j);
    }
  }
  const auto q11 = m.view().quadrant(1, 1);
  EXPECT_EQ(q11(0, 0), 22.0);
  EXPECT_EQ(q11(1, 1), 33.0);
  const auto q01 = m.view().quadrant(0, 1);
  EXPECT_EQ(q01(0, 0), 2.0);
}

TEST(MatrixView, AssignCopiesBlock) {
  Mat src(2, 2, 7.0);
  Mat dst(4, 4, 0.0);
  dst.view().quadrant(1, 0).assign(src.view());
  EXPECT_EQ(dst(2, 0), 7.0);
  EXPECT_EQ(dst(3, 1), 7.0);
  EXPECT_EQ(dst(0, 0), 0.0);
}

TEST(MatrixView, NestedBlocks) {
  Mat m(8, 8);
  fill_random(m, 42);
  const auto inner = m.view().block(2, 2, 4, 4).block(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), m(3, 3));
  EXPECT_EQ(inner(1, 1), m(4, 4));
}

TEST(MatrixView, FillSetsEverything) {
  Mat m(4, 4, 1.0);
  m.view().quadrant(0, 0).fill(9.0);
  EXPECT_EQ(m(0, 0), 9.0);
  EXPECT_EQ(m(1, 1), 9.0);
  EXPECT_EQ(m(2, 2), 1.0);
}

TEST(MatrixView, ToMatrixRoundTrip) {
  Mat m(4, 4);
  fill_random(m, 5);
  const Mat& cm = m;
  const Mat copy = cm.view().block(1, 1, 2, 2).to_matrix();
  EXPECT_EQ(copy(0, 0), m(1, 1));
  EXPECT_EQ(copy(1, 1), m(2, 2));
}

TEST(Helpers, FillRandomDeterministic) {
  Mat a(3, 3), b(3, 3);
  fill_random(a, 99);
  fill_random(b, 99);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  fill_random(b, 100);
  EXPECT_GT(max_abs_diff(a, b), 0.0);
}

TEST(Helpers, Norms) {
  const Mat m = Mat::from_rows({{3, 4}});
  EXPECT_NEAR(frobenius_norm(m), 5.0, 1e-12);
}

TEST(Helpers, PadAndCrop) {
  const Mat m = Mat::from_rows({{1, 2}, {3, 4}});
  const Mat padded = pad_to(m, 3, 4);
  EXPECT_EQ(padded.rows(), 3u);
  EXPECT_EQ(padded(0, 1), 2.0);
  EXPECT_EQ(padded(2, 3), 0.0);
  const Mat cropped = crop_to(padded, 2, 2);
  EXPECT_EQ(max_abs_diff(cropped, m), 0.0);
}

TEST(Helpers, ApproxEqual) {
  Mat a(2, 2, 1.0);
  Mat b(2, 2, 1.0 + 1e-12);
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  Mat c(2, 2, 2.0);
  EXPECT_FALSE(approx_equal(a, c, 1e-9));
  Mat d(2, 3, 1.0);
  EXPECT_FALSE(approx_equal(a, d, 1e-9));
}

TEST(Matmul, IdentityIsNeutral) {
  Mat a(5, 5);
  fill_random(a, 3);
  const Mat c = multiply_naive(a, Mat::identity(5));
  EXPECT_LT(max_abs_diff(a, c), 1e-12);
}

TEST(Matmul, KnownSmallProduct) {
  const Mat a = Mat::from_rows({{1, 2}, {3, 4}});
  const Mat b = Mat::from_rows({{5, 6}, {7, 8}});
  const Mat c = multiply_naive(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matmul, RectangularShapes) {
  Mat a(3, 5), b(5, 2);
  fill_random(a, 1);
  fill_random(b, 2);
  const Mat c = multiply_naive(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  // Spot check one entry.
  double expect = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    expect += a(1, k) * b(k, 1);
  }
  EXPECT_NEAR(c(1, 1), expect, 1e-12);
}

TEST(Matmul, ShapeMismatchThrows) {
  Mat a(2, 3), b(2, 2);
  EXPECT_THROW(multiply_naive(a, b), CheckError);
}

TEST(Matmul, BlockedMatchesNaive) {
  Mat a(33, 33), b(33, 33);
  fill_random(a, 10);
  fill_random(b, 11);
  const Mat naive = multiply_naive(a, b);
  for (const std::size_t tile : {1u, 4u, 16u, 64u}) {
    const Mat blocked = multiply_blocked(a, b, tile);
    EXPECT_LT(max_abs_diff(naive, blocked), 1e-9) << "tile=" << tile;
  }
}

TEST(Matmul, ThreadedMatchesNaive) {
  Mat a(40, 40), b(40, 40);
  fill_random(a, 20);
  fill_random(b, 21);
  const Mat naive = multiply_naive(a, b);
  for (const std::size_t threads : {1u, 2u, 4u, 13u}) {
    const Mat parallel = multiply_threaded(a, b, threads);
    EXPECT_LT(max_abs_diff(naive, parallel), 1e-9) << "threads=" << threads;
  }
}

TEST(Matmul, ThreadedMoreThreadsThanRows) {
  Mat a(3, 3), b(3, 3);
  fill_random(a, 30);
  fill_random(b, 31);
  const Mat c = multiply_threaded(a, b, 64);
  EXPECT_LT(max_abs_diff(multiply_naive(a, b), c), 1e-9);
}

TEST(Matmul, ClassicalFlopCount) {
  // n*m*p multiplications + n*p*(m-1) additions.
  EXPECT_EQ(classical_flops(2, 2, 2), 8 + 4);
  EXPECT_EQ(classical_flops(4, 4, 4), 64 + 48);
  EXPECT_EQ(classical_flops(1, 1, 1), 1);
  EXPECT_EQ(classical_flops(3, 5, 2), 30 + 24);
}

TEST(Matmul, MultiplyAccumulateAddsIntoC) {
  Mat a(2, 2, 1.0), b(2, 2, 1.0);
  Mat c(2, 2, 10.0);
  multiply_accumulate(a.view(), b.view(), c.view());
  EXPECT_EQ(c(0, 0), 12.0);  // 10 + 2
}

TEST(Matrix, ToStringRenders) {
  const Mat m = Mat::from_rows({{1, 2}});
  const std::string s = to_string(m);
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
}

}  // namespace
}  // namespace fmm::linalg
