// Determinism battery for the sweep engine: the serialized sweep report
// must be byte-identical across thread counts and identical to a
// hand-rolled serial loop, for Strassen and an alternative-basis
// algorithm (Theorem 4.1's family).  Also the regression tests for the
// fail-fast contract: a throwing task fails the sweep cleanly with the
// task's (n, M) coordinates in the error, instead of the old
// terminate-on-throw pool behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"
#include "sweep/sweep.hpp"

namespace fmm::sweep {
namespace {

SweepSpec reference_spec() {
  SweepSpec spec;
  spec.algorithms = {"strassen", "winograd-alt"};
  spec.n_grid = {4, 8};
  spec.m_grid = {16, 64};
  spec.kinds = {TaskKind::kSimulate, TaskKind::kLiveness,
                TaskKind::kDominator, TaskKind::kBoundCheck};
  spec.schedule = SchedulePolicy::kRandom;  // maximal RNG sensitivity
  spec.base_seed = 42;
  return spec;
}

TEST(SweepDeterminism, ByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = reference_spec();
  spec.num_threads = 1;
  const std::string serial = run_sweep(spec).to_json();
  for (const std::size_t threads : {2u, 8u}) {
    spec.num_threads = threads;
    EXPECT_EQ(run_sweep(spec).to_json(), serial)
        << "sweep report diverged at " << threads << " threads";
  }
}

TEST(SweepDeterminism, CacheBackedSourceIsByteIdenticalToBuilding) {
  // The engine must not care where CDAGs come from: the default
  // BuildingCdagSource (ephemeral, per-sweep) and the service's
  // content-addressed cache (shared, LRU-evicting) must yield the same
  // report bytes at every thread count — even when the cache is so
  // small that CDAGs are evicted and rebuilt mid-sweep.
  SweepSpec spec = reference_spec();
  spec.num_threads = 1;
  const std::string reference = run_sweep(spec).to_json();
  for (const std::size_t budget_mb : {0u, 256u}) {
    service::CacheConfig cache_config;
    cache_config.memory_budget_bytes = budget_mb << 20;
    service::ContentCache cache(cache_config);
    service::CachingCdagSource source(cache);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      spec.num_threads = threads;
      EXPECT_EQ(run_sweep(spec, source).to_json(), reference)
          << "cache budget " << budget_mb << " MiB diverged at " << threads
          << " threads";
    }
  }
}

TEST(SweepDeterminism, MatchesHandRolledSerialLoop) {
  SweepSpec spec = reference_spec();
  spec.num_threads = 8;
  const SweepResult parallel_result = run_sweep(spec);

  // Hand-rolled reference: enumerate, build each CDAG on demand, run the
  // cells one by one on this thread — no pool involved at all.
  const std::vector<TaskCell> cells = enumerate_tasks(spec);
  ASSERT_EQ(parallel_result.tasks.size(), cells.size());
  std::map<std::pair<std::string, std::size_t>, cdag::Cdag> cdags;
  for (const TaskCell& cell : cells) {
    const auto key = std::make_pair(cell.algorithm, cell.n);
    if (!cdags.count(key)) {
      cdags.emplace(key,
                    cdag::build_cdag(resolve_algorithm(cell.algorithm),
                                     cell.n));
    }
    const TaskResult serial = run_task(cell, cdags.at(key), spec);
    const TaskResult& sharded = parallel_result.tasks[cell.index];
    ASSERT_TRUE(serial.ok) << serial.error;
    EXPECT_TRUE(sharded.ok) << sharded.error;
    EXPECT_EQ(sharded.cell.seed, serial.cell.seed);
    EXPECT_EQ(sharded.loads, serial.loads) << cell.index;
    EXPECT_EQ(sharded.stores, serial.stores) << cell.index;
    EXPECT_EQ(sharded.total_io, serial.total_io) << cell.index;
    EXPECT_EQ(sharded.weighted_io, serial.weighted_io) << cell.index;
    EXPECT_EQ(sharded.computations, serial.computations) << cell.index;
    EXPECT_EQ(sharded.recomputations, serial.recomputations) << cell.index;
    EXPECT_EQ(sharded.liveness_peak, serial.liveness_peak) << cell.index;
    EXPECT_EQ(sharded.dominator_samples, serial.dominator_samples)
        << cell.index;
    EXPECT_EQ(sharded.dominator_worst_ratio, serial.dominator_worst_ratio)
        << cell.index;
    EXPECT_EQ(sharded.dominator_holds, serial.dominator_holds)
        << cell.index;
    EXPECT_EQ(sharded.lower_bound, serial.lower_bound) << cell.index;
    EXPECT_EQ(sharded.bound_ratio, serial.bound_ratio) << cell.index;
    EXPECT_EQ(sharded.bound_holds, serial.bound_holds) << cell.index;
  }
}

TEST(SweepDeterminism, RematRegimeIsDeterministicToo) {
  SweepSpec spec;
  spec.algorithms = {"winograd"};
  spec.n_grid = {8};
  spec.m_grid = {16, 24, 48};
  spec.kinds = {TaskKind::kSimulate};
  spec.remat = true;
  spec.base_seed = 7;
  spec.num_threads = 1;
  const SweepResult serial = run_sweep(spec);
  EXPECT_GT(serial.aggregate_recomputations, 0)
      << "remat sweep should actually recompute at small M";
  for (const std::size_t threads : {2u, 8u}) {
    spec.num_threads = threads;
    EXPECT_EQ(run_sweep(spec).to_json(), serial.to_json());
  }
}

TEST(SweepDeterminism, TaskSeedsAreStableAndDecorrelated) {
  // The seed derivation is part of the report contract (documented in
  // docs/SWEEPS.md): fixed mixing, no dependence on thread count.
  EXPECT_EQ(task_seed(1, 0), task_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(task_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 1000u) << "per-task seeds must not collide";
  EXPECT_NE(task_seed(1, 5), task_seed(2, 5))
      << "base seed must change every stream";
}

TEST(SweepDeterminism, ThrowingTaskFailsSweepWithCoordinates) {
  // M=1 violates the machine's cache_size >= 2 precondition, so the
  // (n=8, M=1) simulate cell throws inside a worker.  The sweep must
  // surface one CheckError naming that cell, not terminate.
  SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {8};
  spec.m_grid = {16, 1, 64};
  spec.kinds = {TaskKind::kSimulate};
  spec.num_threads = 4;
  try {
    run_sweep(spec);
    FAIL() << "expected the M=1 cell to fail the sweep";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n=8"), std::string::npos) << what;
    EXPECT_NE(what.find("M=1)"), std::string::npos) << what;
    EXPECT_NE(what.find("strassen"), std::string::npos) << what;
  }
}

TEST(SweepDeterminism, KeepGoingRecordsFailureInReport) {
  SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {4};
  spec.m_grid = {16, 1, 64};
  spec.kinds = {TaskKind::kSimulate};
  spec.keep_going = true;
  spec.num_threads = 2;
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.num_tasks, 3u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.completed, 2u);
  const TaskResult& bad = result.tasks[1];
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("n=4"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("M=1"), std::string::npos) << bad.error;
  // The failing row is part of the deterministic payload.
  spec.num_threads = 8;
  EXPECT_EQ(run_sweep(spec).to_json(), result.to_json());
}

TEST(SweepDeterminism, UnknownAlgorithmFailsUpFront) {
  SweepSpec spec;
  spec.algorithms = {"no-such-algorithm"};
  spec.n_grid = {4};
  spec.m_grid = {16};
  EXPECT_THROW(run_sweep(spec), CheckError);
}

SweepSpec optimal_spec() {
  // n=2 full Strassen CDAG (33 vertices) at M values where both the
  // search stays exact within the default budget AND the simulator
  // accepts the cell, plus n=4 (343 vertices, beyond the 64-vertex
  // oracle) whose optimal cells must become structured skips.
  SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {2, 4};
  spec.m_grid = {12, 16};
  spec.kinds = {TaskKind::kOptimal, TaskKind::kSimulate,
                TaskKind::kBoundCheck};
  spec.base_seed = 42;
  return spec;
}

TEST(SweepDeterminism, OptimalKindIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = optimal_spec();
  spec.num_threads = 1;
  const SweepResult serial = run_sweep(spec);
  const std::string reference = serial.to_json();
  EXPECT_EQ(serial.optimal_cells, 2u);
  EXPECT_EQ(serial.optimal_exact, 2u);
  EXPECT_EQ(serial.optimal_chains_checked, 2u);
  EXPECT_TRUE(serial.all_chains_hold);
  for (const std::size_t threads : {2u, 8u}) {
    spec.num_threads = threads;
    EXPECT_EQ(run_sweep(spec).to_json(), reference)
        << "optimal sweep diverged at " << threads << " threads";
  }
}

TEST(SweepDeterminism, OptimalKindIsByteIdenticalColdAndWarmCache) {
  SweepSpec spec = optimal_spec();
  spec.num_threads = 2;
  const std::string reference = run_sweep(spec).to_json();
  service::CacheConfig cache_config;
  cache_config.memory_budget_bytes = 256u << 20;
  service::ContentCache cache(cache_config);
  service::CachingCdagSource source(cache);
  // First run populates the cache (cold), second answers from it
  // (warm); both must match the uncached reference byte for byte.
  EXPECT_EQ(run_sweep(spec, source).to_json(), reference) << "cold cache";
  EXPECT_EQ(run_sweep(spec, source).to_json(), reference) << "warm cache";
}

TEST(SweepDeterminism, OptimalInfeasibleCellsSkipInsteadOfAborting) {
  // Regression: an optimal cell the oracle cannot attempt — M too small
  // to ever pebble (M=1), or more than 64 vertices (n=4) — must record
  // a structured `infeasible` skip, not abort the sweep, even in
  // fail-fast (keep_going = false) mode.
  SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {2, 4};
  spec.m_grid = {1, 12};
  spec.kinds = {TaskKind::kOptimal};
  spec.num_threads = 2;
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.num_tasks, 4u);
  EXPECT_EQ(result.failed, 0u);
  // Only (n=2, M=12) is solvable; the other three cells skip.
  EXPECT_EQ(result.skipped, 3u);
  EXPECT_EQ(result.optimal_cells, 1u);
  for (const TaskResult& task : result.tasks) {
    EXPECT_TRUE(task.ok) << task.error;
    if (task.skipped) {
      EXPECT_EQ(task.skip_reason, "infeasible")
          << "n=" << task.cell.n << " M=" << task.cell.m;
    } else {
      EXPECT_EQ(task.cell.n, 2u);
      EXPECT_EQ(task.cell.m, 12);
      EXPECT_EQ(task.optimality, "exact");
      EXPECT_GT(task.states_explored, 0);
    }
  }
}

TEST(SweepDeterminism, OptimalRowRoundTripsThroughCheckpoint) {
  // The checkpoint loader must restore optimal-row payload fields
  // byte-exactly (the load path asserts raw-row identity itself).
  SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {2};
  spec.m_grid = {12};
  spec.kinds = {TaskKind::kOptimal};
  spec.checkpoint_path =
      std::string(testing::TempDir()) + "optimal_ckpt.jsonl";
  const SweepResult first = run_sweep(spec);
  ASSERT_EQ(first.tasks.size(), 1u);
  spec.resume = true;
  const SweepResult resumed = run_sweep(spec);
  ASSERT_EQ(resumed.tasks.size(), 1u);
  EXPECT_EQ(resumed.tasks[0].min_io, first.tasks[0].min_io);
  EXPECT_EQ(resumed.tasks[0].states_explored,
            first.tasks[0].states_explored);
  EXPECT_EQ(resumed.tasks[0].optimality, first.tasks[0].optimality);
  EXPECT_EQ(task_row_json(resumed.tasks[0]),
            task_row_json(first.tasks[0]));
  std::remove(spec.checkpoint_path.c_str());
}

TEST(SweepDeterminism, SimulatePayloadMatchesDirectSimulation) {
  // A 1-cell DFS sweep must agree exactly with calling the simulator
  // directly — the engine adds sharding, not semantics.
  SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {8};
  spec.m_grid = {32};
  spec.kinds = {TaskKind::kSimulate};
  spec.schedule = SchedulePolicy::kDfs;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.tasks.size(), 1u);

  const cdag::Cdag cdag =
      cdag::build_cdag(resolve_algorithm("strassen"), 8);
  pebble::SimOptions options;
  options.cache_size = 32;
  const auto direct =
      pebble::simulate(cdag, pebble::dfs_schedule(cdag), options);
  EXPECT_EQ(result.tasks[0].loads, direct.loads);
  EXPECT_EQ(result.tasks[0].stores, direct.stores);
  EXPECT_EQ(result.tasks[0].total_io, direct.total_io());
}

}  // namespace
}  // namespace fmm::sweep
