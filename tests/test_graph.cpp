// Unit tests for src/graph digraph machinery and the immutable CSR
// representation (GraphBuilder / CsrGraph / conversions).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "graph/csr.hpp"
#include "graph/digraph.hpp"

namespace fmm::graph {
namespace {

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, Degrees) {
  const Digraph g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(Digraph, AddVerticesReturnsFirstId) {
  Digraph g;
  EXPECT_EQ(g.add_vertices(3), 0u);
  EXPECT_EQ(g.add_vertices(2), 3u);
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(Digraph, EdgeOutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), CheckError);
}

TEST(Digraph, SourcesAndSinks) {
  const Digraph g = diamond();
  EXPECT_EQ(g.sources(), (std::vector<VertexId>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<VertexId>{3}));
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
  const Digraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Digraph, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.topological_order(), CheckError);
}

TEST(Digraph, SelfLoopIsCycle) {
  Digraph g(1);
  g.add_edge(0, 0);
  EXPECT_FALSE(g.is_dag());
}

TEST(Digraph, DagIsDag) {
  EXPECT_TRUE(diamond().is_dag());
}

TEST(Digraph, ReachableFrom) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto reach = g.reachable_from({0});
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
  EXPECT_FALSE(reach[4]);
}

TEST(Digraph, ReachableFromMultipleSources) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto reach = g.reachable_from({0, 2});
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[3]);
}

TEST(Digraph, ReachingTo) {
  const Digraph g = diamond();
  const auto reaching = g.reaching_to({3});
  EXPECT_TRUE(reaching[0]);
  EXPECT_TRUE(reaching[1]);
  EXPECT_TRUE(reaching[2]);
  EXPECT_TRUE(reaching[3]);
  const auto reaching1 = g.reaching_to({1});
  EXPECT_TRUE(reaching1[0]);
  EXPECT_FALSE(reaching1[2]);
}

TEST(Digraph, ReachabilityOutOfRangeThrows) {
  const Digraph g = diamond();
  EXPECT_THROW(g.reachable_from({9}), CheckError);
}

TEST(Digraph, DotOutputContainsEdges) {
  const Digraph g = diamond();
  const std::string dot = g.to_dot({"in", "l", "r", "out"});
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"in\""), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Digraph, EmptyGraphTopoOrder) {
  Digraph g;
  EXPECT_TRUE(g.topological_order().empty());
  EXPECT_TRUE(g.is_dag());
}

TEST(Digraph, LinearChainOrder) {
  Digraph g(64);
  for (VertexId v = 0; v + 1 < 64; ++v) {
    g.add_edge(v, v + 1);
  }
  const auto order = g.topological_order();
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(order[v], v);
  }
}

CsrGraph csr_diamond() {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  return builder.freeze();
}

TEST(CsrGraph, FreezeBasicStructure) {
  const CsrGraph g = csr_diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.sources(), (std::vector<VertexId>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<VertexId>{3}));
  EXPECT_TRUE(g.is_dag());
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.topological_order().empty());
}

TEST(GraphBuilder, AddVerticesReturnsFirstId) {
  GraphBuilder builder;
  EXPECT_EQ(builder.add_vertices(3), 0u);
  EXPECT_EQ(builder.add_vertex(), 3u);
  EXPECT_EQ(builder.num_vertices(), 4u);
}

TEST(GraphBuilder, EdgeOutOfRangeThrows) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2), CheckError);
}

TEST(GraphBuilder, FreezeRejectsParallelEdges) {
  // Regression: the legacy Digraph silently accepts duplicate edges
  // (see EdgeCases.DigraphParallelEdges); freeze() must not.
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 1);
  EXPECT_THROW(builder.freeze(), CheckError);
}

TEST(GraphBuilder, FreezeRejectsNonTopologicalEdge) {
  {
    GraphBuilder builder(3);
    builder.add_edge(2, 1);  // u > v: would admit cycles
    EXPECT_THROW(builder.freeze(), CheckError);
  }
  {
    GraphBuilder builder(1);
    builder.add_edge(0, 0);  // self-loop
    EXPECT_THROW(builder.freeze(), CheckError);
  }
}

TEST(GraphBuilder, FreezeConsumesBuilder) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  const CsrGraph g = builder.freeze();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(builder.num_vertices(), 0u);
  EXPECT_EQ(builder.num_edges(), 0u);
}

TEST(CsrGraph, NeighborOrderEqualsInsertionOrder) {
  // Bit-identical pebble simulation depends on this: the LRU clock ticks
  // in neighbor-iteration order, which must match the legacy Digraph's
  // (insertion order), not sorted order.
  GraphBuilder builder(5);
  builder.add_edge(0, 4);
  builder.add_edge(2, 4);
  builder.add_edge(1, 4);
  builder.add_edge(0, 3);
  builder.add_edge(0, 2);
  const CsrGraph g = builder.freeze();
  const auto ins = g.in_neighbors(4);
  ASSERT_EQ(ins.size(), 3u);
  EXPECT_EQ(ins[0], 0u);
  EXPECT_EQ(ins[1], 2u);
  EXPECT_EQ(ins[2], 1u);
  const auto outs = g.out_neighbors(0);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0], 4u);
  EXPECT_EQ(outs[1], 3u);
  EXPECT_EQ(outs[2], 2u);
}

TEST(CsrGraph, TopologicalOrderIsIdentity) {
  // freeze() validates u < v per edge, so ids are already topologically
  // sorted and topological_order() returns the identity permutation —
  // which is also a valid order for the equivalent Digraph.
  GraphBuilder builder(6);
  Digraph d(6);
  const std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 2}, {1, 2}, {2, 4}, {3, 4}, {2, 5}, {4, 5}};
  for (const auto& [u, v] : edges) {
    builder.add_edge(u, v);
    d.add_edge(u, v);
  }
  const CsrGraph g = builder.freeze();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 6u);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(order[v], v);
  }
  // Digraph's Kahn pass yields a (possibly different) valid order over
  // the same vertex set.
  auto kahn = d.topological_order();
  EXPECT_EQ(kahn.size(), 6u);
  std::sort(kahn.begin(), kahn.end());
  EXPECT_EQ(kahn, order);
}

TEST(CsrGraph, ReachabilityBothDirections) {
  const CsrGraph g = csr_diamond();
  const auto fwd = g.reachable_from({1});
  EXPECT_FALSE(fwd[0]);
  EXPECT_TRUE(fwd[1]);
  EXPECT_FALSE(fwd[2]);
  EXPECT_TRUE(fwd[3]);
  const auto bwd = g.reaching_to({1});
  EXPECT_TRUE(bwd[0]);
  EXPECT_TRUE(bwd[1]);
  EXPECT_FALSE(bwd[2]);
  EXPECT_FALSE(bwd[3]);
  EXPECT_THROW(g.reachable_from({9}), CheckError);
}

TEST(CsrGraph, RoundtripConversionsPreserveEverything) {
  GraphBuilder builder(5);
  builder.add_edge(0, 4);
  builder.add_edge(2, 4);
  builder.add_edge(1, 3);
  builder.add_edge(0, 3);
  builder.add_edge(3, 4);
  const CsrGraph g = builder.freeze();
  const Digraph d = digraph_from_csr(g);
  EXPECT_EQ(d.num_vertices(), g.num_vertices());
  EXPECT_EQ(d.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto outs = g.out_neighbors(v);
    EXPECT_TRUE(std::equal(outs.begin(), outs.end(),
                           d.out_neighbors(v).begin(),
                           d.out_neighbors(v).end()));
    const auto ins = g.in_neighbors(v);
    EXPECT_TRUE(std::equal(ins.begin(), ins.end(),
                           d.in_neighbors(v).begin(),
                           d.in_neighbors(v).end()));
  }
  EXPECT_EQ(csr_from_digraph(d), g);
}

TEST(CsrGraph, ConversionRejectsInvalidDigraph) {
  {
    Digraph d(2);
    d.add_edge(0, 1);
    d.add_edge(0, 1);  // legal in Digraph, rejected by conversion
    EXPECT_THROW(csr_from_digraph(d), CheckError);
  }
  {
    Digraph d(3);
    d.add_edge(2, 1);  // not topologically appended
    EXPECT_THROW(csr_from_digraph(d), CheckError);
  }
}

TEST(CsrGraph, DotOutputAndGuard) {
  const CsrGraph g = csr_diamond();
  const std::string dot = g.to_dot({"in", "l", "r", "out"});
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"in\""), std::string::npos);

  GraphBuilder big(kDotVertexLimit + 1);
  const CsrGraph huge = big.freeze();
  EXPECT_THROW(huge.to_dot(), CheckError);
  EXPECT_NE(huge.to_dot({}, /*allow_large=*/true).find("digraph"),
            std::string::npos);
}

TEST(CsrGraph, MemoryBytesSmallerThanDigraph) {
  GraphBuilder builder(256);
  Digraph d(256);
  for (VertexId v = 0; v + 1 < 256; ++v) {
    builder.add_edge(v, v + 1);
    d.add_edge(v, v + 1);
  }
  const CsrGraph g = builder.freeze();
  EXPECT_GT(g.memory_bytes(), 0u);
  EXPECT_LT(g.memory_bytes(), d.memory_bytes());
}

}  // namespace
}  // namespace fmm::graph
