// Unit tests for src/graph digraph machinery.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/digraph.hpp"

namespace fmm::graph {
namespace {

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, Degrees) {
  const Digraph g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(Digraph, AddVerticesReturnsFirstId) {
  Digraph g;
  EXPECT_EQ(g.add_vertices(3), 0u);
  EXPECT_EQ(g.add_vertices(2), 3u);
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(Digraph, EdgeOutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), CheckError);
}

TEST(Digraph, SourcesAndSinks) {
  const Digraph g = diamond();
  EXPECT_EQ(g.sources(), (std::vector<VertexId>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<VertexId>{3}));
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
  const Digraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Digraph, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.topological_order(), CheckError);
}

TEST(Digraph, SelfLoopIsCycle) {
  Digraph g(1);
  g.add_edge(0, 0);
  EXPECT_FALSE(g.is_dag());
}

TEST(Digraph, DagIsDag) {
  EXPECT_TRUE(diamond().is_dag());
}

TEST(Digraph, ReachableFrom) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto reach = g.reachable_from({0});
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
  EXPECT_FALSE(reach[4]);
}

TEST(Digraph, ReachableFromMultipleSources) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto reach = g.reachable_from({0, 2});
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[3]);
}

TEST(Digraph, ReachingTo) {
  const Digraph g = diamond();
  const auto reaching = g.reaching_to({3});
  EXPECT_TRUE(reaching[0]);
  EXPECT_TRUE(reaching[1]);
  EXPECT_TRUE(reaching[2]);
  EXPECT_TRUE(reaching[3]);
  const auto reaching1 = g.reaching_to({1});
  EXPECT_TRUE(reaching1[0]);
  EXPECT_FALSE(reaching1[2]);
}

TEST(Digraph, ReachabilityOutOfRangeThrows) {
  const Digraph g = diamond();
  EXPECT_THROW(g.reachable_from({9}), CheckError);
}

TEST(Digraph, DotOutputContainsEdges) {
  const Digraph g = diamond();
  const std::string dot = g.to_dot({"in", "l", "r", "out"});
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"in\""), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Digraph, EmptyGraphTopoOrder) {
  Digraph g;
  EXPECT_TRUE(g.topological_order().empty());
  EXPECT_TRUE(g.is_dag());
}

TEST(Digraph, LinearChainOrder) {
  Digraph g(64);
  for (VertexId v = 0; v + 1 < 64; ++v) {
    g.add_edge(v, v + 1);
  }
  const auto order = g.topological_order();
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(order[v], v);
  }
}

}  // namespace
}  // namespace fmm::graph
