// Certification of Lemma 3.7 (min dominator >= |Z|/2) and Lemma 3.11
// (vertex-disjoint path counts) on concrete CDAGs — the computational
// heart of the reproduction: exact minimum dominator sets are computed by
// max-flow, so every sample is a rigorous check of the lemma's statement.
#include <gtest/gtest.h>

#include "bilinear/catalog.hpp"
#include "bounds/dominator_cert.hpp"
#include "cdag/builder.hpp"
#include "common/rng.hpp"
#include "graph/vertex_cut.hpp"

namespace fmm::bounds {
namespace {

using cdag::build_cdag;

TEST(MinDominator, BaseCaseOutputsNeedAtLeastTwo) {
  // H^{2x2}: Z = the 4 outputs; Lemma 3.7 says min dominator >= 2.
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 2);
  const std::size_t dom = min_dominator_size(cdag, cdag.outputs);
  EXPECT_GE(dom, 2u);
  // And it cannot exceed the output count (outputs dominate themselves).
  EXPECT_LE(dom, 4u);
}

TEST(MinDominator, SingleOutputIsOne) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 2);
  EXPECT_EQ(min_dominator_size(cdag, {cdag.outputs[0]}), 1u);
}

TEST(MinDominator, MatchesBruteForceOnBaseCdag) {
  // H^{2x2} has 33 vertices — brute force is too big, but we can brute
  // force a sub-question: dominators of 2 outputs are at least... use the
  // disjoint-path dual instead: max disjoint paths == min cut.
  const cdag::Cdag cdag = build_cdag(bilinear::winograd(), 2);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pick = rng.sample_without_replacement(4, 2);
    const std::vector<graph::VertexId> z{cdag.outputs[pick[0]],
                                         cdag.outputs[pick[1]]};
    const auto cut = graph::min_vertex_cut(cdag.graph, cdag.all_inputs(), z);
    EXPECT_EQ(cut.cut_size, graph::max_vertex_disjoint_paths(
                                cdag.graph, cdag.all_inputs(), z));
    EXPECT_TRUE(graph::is_dominator_set(cdag.graph, cdag.all_inputs(), z,
                                        cut.cut_vertices));
  }
}

class Lemma37Cert
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 ZChoice>> {};

TEST_P(Lemma37Cert, DominatorAtLeastHalfZ) {
  const auto [alg_index, n, choice] = GetParam();
  const auto algorithms = bilinear::all_fast_2x2_algorithms();
  const cdag::Cdag cdag = build_cdag(algorithms[alg_index], n);
  Rng rng(1234 + alg_index * 100 + n);
  const std::size_t r = 2;
  const DominatorCertificate cert =
      certify_dominator_bound(cdag, r, /*num_samples=*/8, choice, rng);
  EXPECT_TRUE(cert.all_hold)
      << algorithms[alg_index].name() << " n=" << n
      << " worst ratio " << cert.worst_ratio;
  EXPECT_GE(cert.worst_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SmallCdags, Lemma37Cert,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1),  // strassen, winograd
                       ::testing::Values<std::size_t>(4, 8),
                       ::testing::Values(ZChoice::kSingleSubproblem,
                                         ZChoice::kUniformRandom,
                                         ZChoice::kColumnSlices)));

TEST(Lemma37, LargerSubproblemsAtN8) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 8);
  Rng rng(99);
  const DominatorCertificate cert = certify_dominator_bound(
      cdag, 4, 5, ZChoice::kSingleSubproblem, rng);
  EXPECT_TRUE(cert.all_hold) << "worst " << cert.worst_ratio;
  // Z = 16 outputs of a 4x4 sub-problem: dominator >= 8.
  for (const auto& sample : cert.samples) {
    EXPECT_EQ(sample.z_size, 16u);
    EXPECT_GE(sample.min_dominator, 8u);
  }
}

TEST(Lemma37, WholeProblemOutputs) {
  // Z = all n^2 outputs of H^{n x n} (r = n): dominator >= n^2/2.
  for (const std::size_t n : {2u, 4u, 8u}) {
    const cdag::Cdag cdag = build_cdag(bilinear::strassen(), n);
    const std::size_t dom = min_dominator_size(cdag, cdag.outputs);
    EXPECT_GE(dom, n * n / 2) << "n=" << n;
  }
}

TEST(Lemma37, DominatorSamplesReportSlackRatio) {
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 4);
  Rng rng(55);
  const DominatorCertificate cert = certify_dominator_bound(
      cdag, 2, 4, ZChoice::kSingleSubproblem, rng);
  ASSERT_EQ(cert.samples.size(), 4u);
  for (const auto& sample : cert.samples) {
    EXPECT_EQ(sample.z_size, 4u);
    EXPECT_TRUE(sample.holds);
    EXPECT_DOUBLE_EQ(sample.slack_ratio,
                     static_cast<double>(sample.min_dominator) / 2.0);
  }
}

TEST(Lemma311, DisjointPathsMeetGuarantee) {
  for (const std::size_t n : {4u, 8u}) {
    const cdag::Cdag cdag = build_cdag(bilinear::strassen(), n);
    Rng rng(2000 + n);
    const auto samples = certify_disjoint_paths(cdag, 2, 10, rng);
    for (const auto& sample : samples) {
      EXPECT_TRUE(sample.holds)
          << "n=" << n << " |Z|=" << sample.z_size << " |Γ|="
          << sample.gamma_size << " paths=" << sample.disjoint_paths
          << " guaranteed=" << sample.guaranteed;
    }
  }
}

TEST(Lemma311, WinogradToo) {
  const cdag::Cdag cdag = build_cdag(bilinear::winograd(), 8);
  Rng rng(31);
  const auto samples = certify_disjoint_paths(cdag, 4, 6, rng);
  for (const auto& sample : samples) {
    EXPECT_TRUE(sample.holds)
        << "|Z|=" << sample.z_size << " |Γ|=" << sample.gamma_size
        << " paths=" << sample.disjoint_paths << " vs "
        << sample.guaranteed;
  }
}

TEST(Lemma311, EmptyGammaGivesFullOperandPaths) {
  // With Γ = ∅ and Z a whole sub-problem's outputs, the guarantee is
  // 2 r^2 disjoint paths — exactly the number of operand vertices, all
  // of which must be reachable via disjoint paths.
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 4);
  Rng rng(77);
  const auto samples = certify_disjoint_paths(cdag, 2, 20, rng);
  bool saw_empty_gamma = false;
  for (const auto& sample : samples) {
    if (sample.gamma_size == 0) {
      saw_empty_gamma = true;
      EXPECT_GE(sample.disjoint_paths, 2 * sample.z_size);
    }
  }
  EXPECT_TRUE(saw_empty_gamma);
}

TEST(Lemma37, GammaBelowHalfCannotDominate) {
  // Direct consequence used in the proof: any Γ with |Γ| < |Z|/2 leaves
  // an input->Z path intact.
  const cdag::Cdag cdag = build_cdag(bilinear::strassen(), 4);
  Rng rng(4242);
  const cdag::SubproblemLevel& level = cdag.subproblems(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto z_span = level.outputs_of(rng.uniform(level.count));
    const std::vector<graph::VertexId> z(z_span.begin(), z_span.end());
    // Γ: one random non-input vertex (< |Z|/2 = 2).
    const graph::VertexId gamma = static_cast<graph::VertexId>(
        32 + rng.uniform(cdag.graph.num_vertices() - 32));
    EXPECT_FALSE(graph::is_dominator_set(cdag.graph, cdag.all_inputs(), z,
                                         {gamma}));
  }
}

}  // namespace
}  // namespace fmm::bounds
