// Fault injection, retry, checkpoint/resume, and recovery-by-
// recomputation: the resilience layer's determinism contracts.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "parallel/distsim.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace fmm;

// ---------------------------------------------------------------------------
// Fault model

TEST(ResilienceFault, SplitmixIsDeterministicAndKeyed) {
  EXPECT_EQ(resilience::splitmix64(1, 2, 3), resilience::splitmix64(1, 2, 3));
  EXPECT_NE(resilience::splitmix64(1, 2, 3), resilience::splitmix64(2, 2, 3));
  EXPECT_NE(resilience::splitmix64(1, 2, 3), resilience::splitmix64(1, 3, 2));
  for (std::uint64_t a = 0; a < 100; ++a) {
    const double u = resilience::splitmix_unit(42, a);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(ResilienceFault, RandomScheduleIsReproducible) {
  const auto a = resilience::FaultSpec::random_schedule(7, 49, 10, 3, 0.1);
  const auto b = resilience::FaultSpec::random_schedule(7, 49, 10, 3, 0.1);
  ASSERT_EQ(a.wipes.size(), 3u);
  for (std::size_t i = 0; i < a.wipes.size(); ++i) {
    EXPECT_EQ(a.wipes[i].processor, b.wipes[i].processor);
    EXPECT_EQ(a.wipes[i].step, b.wipes[i].step);
    EXPECT_GE(a.wipes[i].processor, 0);
    EXPECT_LT(a.wipes[i].processor, 49);
    EXPECT_GE(a.wipes[i].step, 0);
    EXPECT_LT(a.wipes[i].step, 10);
  }
  const auto c = resilience::FaultSpec::random_schedule(8, 49, 10, 3, 0.1);
  bool any_different = false;
  for (std::size_t i = 0; i < a.wipes.size(); ++i) {
    any_different = any_different ||
                    a.wipes[i].processor != c.wipes[i].processor ||
                    a.wipes[i].step != c.wipes[i].step;
  }
  EXPECT_TRUE(any_different) << "different seeds drew identical schedules";
}

TEST(ResilienceFault, RetransmissionsAreDeterministicAndZeroWithoutDrops) {
  resilience::FaultSpec clean;
  clean.message_drop_rate = 0.0;
  const resilience::FaultInjector none(clean);
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(none.retransmissions(t), 0);
  }

  resilience::FaultSpec lossy;
  lossy.seed = 5;
  lossy.message_drop_rate = 0.3;
  const resilience::FaultInjector a(lossy);
  const resilience::FaultInjector b(lossy);
  std::int64_t total = 0;
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(a.retransmissions(t), b.retransmissions(t));
    EXPECT_GE(a.retransmissions(t), 0);
    total += a.retransmissions(t);
  }
  EXPECT_GT(total, 0) << "30% drop rate produced no retransmissions";
}

TEST(ResilienceFault, InjectorRejectsBadSpecs) {
  resilience::FaultSpec bad;
  bad.message_drop_rate = 1.0;  // would retransmit forever
  EXPECT_THROW(resilience::FaultInjector{bad}, CheckError);
  bad.message_drop_rate = -0.1;
  EXPECT_THROW(resilience::FaultInjector{bad}, CheckError);
  bad.message_drop_rate = 0.0;
  bad.wipes.push_back({-1, 0});
  EXPECT_THROW(resilience::FaultInjector{bad}, CheckError);
  resilience::FaultSpec capless;
  capless.max_retransmissions = 0;
  EXPECT_THROW(resilience::FaultInjector{capless}, CheckError);
  capless.max_retransmissions = -3;
  EXPECT_THROW(resilience::FaultInjector{capless}, CheckError);
}

TEST(ResilienceFault, RetransmissionCapMatchesLegacyDefault) {
  // The configurable cap defaults to the historical hard-coded 64:
  // every count a legacy run produced is reproduced byte-for-byte.
  resilience::FaultSpec legacy;
  legacy.seed = 5;
  legacy.message_drop_rate = 0.3;
  EXPECT_EQ(legacy.max_retransmissions, 64);
  resilience::FaultSpec widened = legacy;
  widened.max_retransmissions = 1024;  // never reached at 30%
  const resilience::FaultInjector a(legacy);
  const resilience::FaultInjector b(widened);
  for (std::uint64_t t = 0; t < 2000; ++t) {
    EXPECT_EQ(a.retransmissions(t), b.retransmissions(t));
  }
}

TEST(ResilienceFault, ExceededCapReportsStepAndProcessor) {
  // cap=1 with a near-certain drop rate: some transfer keeps dropping
  // past its cap, and the error must carry the (step, processor)
  // coordinate the schedule is debugged by.
  resilience::FaultSpec harsh;
  harsh.seed = 9;
  harsh.message_drop_rate = 0.99;
  harsh.max_retransmissions = 1;
  const resilience::FaultInjector injector(harsh);
  bool threw = false;
  for (std::uint64_t t = 0; t < 64 && !threw; ++t) {
    try {
      injector.retransmissions(t, 3, 5);
    } catch (const CheckError& e) {
      threw = true;
      const std::string what = e.what();
      EXPECT_NE(what.find("retransmission cap of 1"), std::string::npos);
      EXPECT_NE(what.find("at step 3 on processor 5"), std::string::npos);
    }
  }
  EXPECT_TRUE(threw) << "99% drop never exceeded a cap of 1";

  // The coordinate-free overload still names the cap, but marks the
  // location unknown instead of inventing one.
  bool threw_unknown = false;
  for (std::uint64_t t = 0; t < 64 && !threw_unknown; ++t) {
    try {
      injector.retransmissions(t);
    } catch (const CheckError& e) {
      threw_unknown = true;
      EXPECT_NE(std::string(e.what()).find("(step/processor unknown)"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(threw_unknown);
}

TEST(ResilienceFault, EventsJsonIsSortedByStepThenProcessor) {
  std::vector<resilience::FaultEvent> events;
  events.push_back({2, 1, 10});
  events.push_back({0, 3, 5});
  events.push_back({0, 1, 7});
  const std::string json = resilience::fault_events_to_json(events);
  const auto parsed = resilience::parse_json(json);
  ASSERT_EQ(parsed.items().size(), 3u);
  EXPECT_EQ(parsed.items()[0].at("step").as_i64(), 0);
  EXPECT_EQ(parsed.items()[0].at("processor").as_i64(), 1);
  EXPECT_EQ(parsed.items()[1].at("processor").as_i64(), 3);
  EXPECT_EQ(parsed.items()[2].at("step").as_i64(), 2);
  EXPECT_EQ(parsed.items()[2].at("recovered_words").as_i64(), 10);
  for (const auto& event : parsed.items()) {
    EXPECT_EQ(event.at("kind").as_string(), "wipe");
  }
}

// ---------------------------------------------------------------------------
// Faulted distributed simulation (Theorem 1.1 with recomputation)

TEST(ResilienceDistSim, ZeroFaultSpecMatchesCleanSimulation) {
  const auto clean = parallel::simulate_caps_elementwise(16, 7);
  resilience::FaultSpec spec;  // no wipes, no drops
  const auto result = parallel::simulate_caps_elementwise_faulted(16, 7, spec);
  EXPECT_EQ(result.faulted.max_words_per_proc(),
            clean.max_words_per_proc());
  EXPECT_EQ(result.faulted.total_words(), clean.total_words());
  EXPECT_EQ(result.retransmitted_words, 0);
  EXPECT_EQ(result.recovery_words, 0);
  EXPECT_TRUE(result.events.empty());
  EXPECT_TRUE(result.faulted_dominates_fault_free);
  EXPECT_TRUE(result.bound_holds);
}

TEST(ResilienceDistSim, FaultedRunsAreReproducible) {
  const auto spec =
      resilience::FaultSpec::random_schedule(11, 7, 3, 2, 0.05);
  const auto a = parallel::simulate_caps_elementwise_faulted(32, 7, spec);
  const auto b = parallel::simulate_caps_elementwise_faulted(32, 7, spec);
  EXPECT_EQ(a.faulted.sent, b.faulted.sent);
  EXPECT_EQ(a.faulted.received, b.faulted.received);
  EXPECT_EQ(a.retransmitted_words, b.retransmitted_words);
  EXPECT_EQ(a.recovery_words, b.recovery_words);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].recovered_words, b.events[i].recovered_words);
  }
}

// The acceptance scenario: seeded schedules with at least one wipe and a
// nonzero drop rate, at Strassen sizes n in {16, 32} on P in {7, 49}.
// Recovery must complete and the faulted cost chain
// faulted >= fault-free >= Theorem 1.1 bound must hold at every cell.
TEST(ResilienceDistSim, FaultedCostDominatesAndStaysAboveTheorem11) {
  for (const std::int64_t n : {16, 32}) {
    for (const std::int64_t p : {7, 49}) {
      const auto spec = resilience::FaultSpec::random_schedule(
          /*seed=*/13, static_cast<int>(p), /*max_step=*/2,
          /*wipe_count=*/2, /*message_drop_rate=*/0.05);
      ASSERT_GE(spec.wipes.size(), 1u);
      const auto result =
          parallel::simulate_caps_elementwise_faulted(n, p, spec);
      EXPECT_TRUE(result.faulted_dominates_fault_free)
          << "n=" << n << " P=" << p;
      EXPECT_TRUE(result.bound_holds) << "n=" << n << " P=" << p;
      EXPECT_GE(static_cast<double>(result.faulted.max_words_per_proc()),
                result.parallel_lower_bound);
      EXPECT_GT(result.parallel_lower_bound, 0.0);
    }
  }
}

TEST(ResilienceDistSim, WipeRecoveryChargesEveryReplayedWord) {
  resilience::FaultSpec spec;
  spec.wipes.push_back({0, 0});  // wipe processor 0 at the root step
  const auto result =
      parallel::simulate_caps_elementwise_faulted(32, 7, spec);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_GT(result.events[0].recovered_words, 0);
  EXPECT_EQ(result.recovery_words, result.events[0].recovered_words);
  // Recovery words are charged on top of the fault-free totals.
  EXPECT_EQ(result.faulted.total_words(),
            result.fault_free.total_words() + result.recovery_words);
}

TEST(ResilienceDistSim, RejectsBadFaultArguments) {
  resilience::FaultSpec spec;
  spec.wipes.push_back({99, 0});  // processor outside [0, 7)
  EXPECT_THROW(parallel::simulate_caps_elementwise_faulted(32, 7, spec),
               CheckError);
  resilience::FaultSpec ok_spec;
  EXPECT_THROW(parallel::simulate_caps_elementwise_faulted(32, 1, ok_spec),
               CheckError)
      << "P=1 has no communication to fault";
}

// ---------------------------------------------------------------------------
// Retry with virtual-clock backoff

TEST(ResilienceRetry, BackoffGrowsGeometrically) {
  resilience::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ticks = 3;
  policy.backoff_multiplier = 2;
  EXPECT_EQ(resilience::backoff_before_attempt(policy, 2), 3);
  EXPECT_EQ(resilience::backoff_before_attempt(policy, 3), 6);
  EXPECT_EQ(resilience::backoff_before_attempt(policy, 4), 12);
  EXPECT_EQ(resilience::backoff_before_attempt(policy, 5), 24);
}

TEST(ResilienceRetry, TryAdvanceStopsAtMaxAttempts) {
  resilience::RetryPolicy policy;
  policy.max_attempts = 3;
  resilience::RetryState state;
  EXPECT_TRUE(resilience::try_advance(policy, state));   // attempt 1
  EXPECT_EQ(state.attempts, 1);
  EXPECT_EQ(state.clock_ticks, 0);
  EXPECT_TRUE(resilience::try_advance(policy, state));   // attempt 2
  EXPECT_EQ(state.clock_ticks, 1);
  EXPECT_TRUE(resilience::try_advance(policy, state));   // attempt 3
  EXPECT_EQ(state.clock_ticks, 3);
  EXPECT_FALSE(resilience::try_advance(policy, state));  // exhausted
  EXPECT_TRUE(state.gave_up);
  EXPECT_EQ(state.attempts, 3);
}

TEST(ResilienceRetry, VirtualDeadlineCutsRetriesShort) {
  resilience::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ticks = 3;
  policy.backoff_multiplier = 2;
  policy.deadline_ticks = 4;  // allows the first 3-tick backoff only
  resilience::RetryState state;
  EXPECT_TRUE(resilience::try_advance(policy, state));   // attempt 1
  EXPECT_TRUE(resilience::try_advance(policy, state));   // attempt 2, clock 3
  EXPECT_FALSE(resilience::try_advance(policy, state));  // +6 > deadline
  EXPECT_TRUE(state.gave_up);
  EXPECT_EQ(state.attempts, 2);
  EXPECT_EQ(state.clock_ticks, 3);
}

TEST(ResilienceRetry, OverflowingBackoffSaturatesInsteadOfThrowing) {
  // A long retry budget legitimately overflows int64 backoff around
  // attempt 64; try_advance must saturate, not throw, and without a
  // deadline the task keeps its full attempt budget.
  resilience::RetryPolicy policy;
  policy.max_attempts = 80;
  policy.base_backoff_ticks = 1;
  policy.backoff_multiplier = 2;
  policy.deadline_ticks = 0;
  resilience::RetryState state;
  for (int i = 0; i < 80; ++i) {
    EXPECT_TRUE(resilience::try_advance(policy, state)) << "attempt "
                                                        << (i + 1);
  }
  EXPECT_EQ(state.attempts, 80);
  EXPECT_EQ(state.clock_ticks, std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(resilience::try_advance(policy, state));
  EXPECT_TRUE(state.gave_up);
}

TEST(ResilienceRetry, SaturatedBackoffTripsNonzeroDeadline) {
  resilience::RetryPolicy policy;
  policy.max_attempts = 200;
  policy.base_backoff_ticks = 1;
  policy.backoff_multiplier = 2;
  policy.deadline_ticks = std::int64_t{1} << 62;
  resilience::RetryState state;
  while (resilience::try_advance(policy, state)) {
  }
  EXPECT_TRUE(state.gave_up);
  EXPECT_LT(state.attempts, 80) << "deadline should cut the budget short";
  EXPECT_LE(state.clock_ticks, policy.deadline_ticks);
}

TEST(ResilienceRetry, ValidateRejectsMalformedPolicies) {
  resilience::RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(resilience::validate(policy), CheckError);
  policy.max_attempts = 1;
  policy.backoff_multiplier = 0;
  EXPECT_THROW(resilience::validate(policy), CheckError);
  policy.backoff_multiplier = 2;
  policy.base_backoff_ticks = -1;
  EXPECT_THROW(resilience::validate(policy), CheckError);
}

// ---------------------------------------------------------------------------
// Resilient sweep engine

sweep::SweepSpec tiny_spec() {
  sweep::SweepSpec spec;
  spec.algorithms = {"strassen"};
  spec.n_grid = {4, 8};
  spec.m_grid = {16};
  spec.kinds = {sweep::TaskKind::kSimulate, sweep::TaskKind::kBoundCheck};
  spec.base_seed = 42;
  spec.num_threads = 1;
  return spec;
}

TEST(ResilienceSweep, InjectedFailuresRecoverDeterministically) {
  sweep::SweepSpec spec = tiny_spec();
  spec.retry.max_attempts = 4;
  spec.inject_failure_rate = 0.4;
  spec.inject_seed = 7;
  spec.keep_going = true;

  const sweep::SweepResult reference = sweep::run_sweep(spec);
  EXPECT_EQ(reference.failed, 0u)
      << "40% transient faults with 4 attempts should always recover";
  bool any_retried = false;
  for (const auto& task : reference.tasks) {
    any_retried = any_retried || task.attempts > 1;
  }
  EXPECT_TRUE(any_retried)
      << "seed 7 at 40% should fault at least one attempt";

  for (const std::size_t threads : {2u, 8u}) {
    sweep::SweepSpec parallel_spec = spec;
    parallel_spec.num_threads = threads;
    const sweep::SweepResult run = sweep::run_sweep(parallel_spec);
    EXPECT_EQ(run.to_json(), reference.to_json())
        << "retry path not deterministic at " << threads << " threads";
    EXPECT_EQ(run.resilience_json(), reference.resilience_json());
  }
}

TEST(ResilienceSweep, GivesUpWithCoordinatesAfterMaxAttempts) {
  sweep::SweepSpec spec = tiny_spec();
  spec.retry.max_attempts = 3;
  spec.inject_failure_rate = 1.0;  // every attempt faults
  spec.keep_going = true;

  const sweep::SweepResult result = sweep::run_sweep(spec);
  EXPECT_EQ(result.failed, result.num_tasks);
  for (const auto& task : result.tasks) {
    EXPECT_FALSE(task.ok);
    EXPECT_TRUE(task.gave_up);
    EXPECT_EQ(task.attempts, 3);
    // The error names the cell and the attempt count.
    EXPECT_NE(task.error.find("strassen"), std::string::npos) << task.error;
    EXPECT_NE(task.error.find("(n=" + std::to_string(task.cell.n) +
                              ", M=16)"),
              std::string::npos)
        << task.error;
    EXPECT_NE(task.error.find("giving up after 3 attempt(s)"),
              std::string::npos)
        << task.error;
  }
}

TEST(ResilienceSweep, FailFastStillThrowsWhenRetriesExhaust) {
  sweep::SweepSpec spec = tiny_spec();
  spec.retry.max_attempts = 2;
  spec.inject_failure_rate = 1.0;
  spec.keep_going = false;
  EXPECT_THROW(sweep::run_sweep(spec), CheckError);
}

TEST(ResilienceSweep, BudgetDegradesOversizedCellsToSkippedRows) {
  sweep::SweepSpec spec = tiny_spec();
  // Strassen n=4 estimates at ~44 KiB, n=8 at ~308 KiB: a 100 KiB budget
  // keeps the small cell and degrades the large one.
  spec.max_cell_bytes = 100 * 1024;
  const sweep::SweepResult result = sweep::run_sweep(spec);
  EXPECT_EQ(result.failed, 0u);
  for (const auto& task : result.tasks) {
    if (task.cell.n == 4) {
      EXPECT_FALSE(task.skipped);
      EXPECT_GT(task.total_io, 0);
    } else {
      EXPECT_TRUE(task.ok);
      EXPECT_TRUE(task.skipped);
      EXPECT_EQ(task.skip_reason, "budget");
      EXPECT_EQ(task.attempts, 0);
    }
  }
  // The aggregates re-derive from the rows.
  const auto section = resilience::parse_json(result.resilience_json());
  EXPECT_EQ(section.at("budget_skipped").as_i64(), 2);
}

TEST(ResilienceSweep, BudgetRowsAreDeterministicAcrossThreadCounts) {
  sweep::SweepSpec spec = tiny_spec();
  spec.max_cell_bytes = 100 * 1024;
  const sweep::SweepResult reference = sweep::run_sweep(spec);
  for (const std::size_t threads : {2u, 8u}) {
    sweep::SweepSpec parallel_spec = spec;
    parallel_spec.num_threads = threads;
    EXPECT_EQ(sweep::run_sweep(parallel_spec).to_json(),
              reference.to_json());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "fmm_resilience_" + name;
}

TEST(ResilienceCheckpoint, JsonParserRoundTripsUint64Seeds) {
  const auto doc = resilience::parse_json(
      "{\"seed\": 18446744073709551615, \"neg\": -7, \"pi\": 3.25, "
      "\"s\": \"a\\\"b\\nc\", \"flag\": true, \"none\": null, "
      "\"arr\": [1, 2]}");
  EXPECT_EQ(doc.at("seed").as_u64(), 18446744073709551615ULL);
  EXPECT_EQ(doc.at("neg").as_i64(), -7);
  EXPECT_DOUBLE_EQ(doc.at("pi").as_double(), 3.25);
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\nc");
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_EQ(doc.at("none").kind(), resilience::JsonValue::Kind::kNull);
  EXPECT_EQ(doc.at("arr").items().size(), 2u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), CheckError);
  EXPECT_THROW(resilience::parse_json("{\"x\": }"), CheckError);
  EXPECT_THROW(resilience::parse_json("{} trailing"), CheckError);
}

TEST(ResilienceCheckpoint, TornTailIsDroppedMidFileCorruptionRefused) {
  const std::string path = temp_path("torn.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\": \"x\"}\n";
    out << "{\"index\": 0}\n";
    out << "{\"index\": 1, \"tr";  // killed mid-append
  }
  const auto file = resilience::load_checkpoint(path);
  EXPECT_TRUE(file.truncated_tail);
  ASSERT_EQ(file.rows.size(), 1u);
  EXPECT_EQ(file.rows[0].at("index").as_i64(), 0);

  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\": \"x\"}\n";
    out << "{\"index\": 0, \"tr\n";  // torn...
    out << "{\"index\": 1}\n";       // ...but complete rows follow
  }
  EXPECT_THROW(resilience::load_checkpoint(path), CheckError);
  std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, RefusesResumeUnderDifferentSpec) {
  const std::string path = temp_path("fingerprint.jsonl");
  sweep::SweepSpec spec = tiny_spec();
  sweep::write_sweep_checkpoint(path, spec, {});
  sweep::SweepSpec other = spec;
  other.m_grid = {64};
  EXPECT_THROW(sweep::load_sweep_checkpoint(path, other), CheckError);
  // Checkpoint knobs are excluded from the fingerprint: a resume that
  // only adds them must be accepted.
  sweep::SweepSpec same = spec;
  same.checkpoint_path = path;
  same.resume = true;
  EXPECT_NO_THROW(sweep::load_sweep_checkpoint(path, same));
  std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, BudgetSkipsCheckpointSafelyAlongsideWorkers) {
  // Budget-skip rows are appended from the submitting thread while
  // already-queued workers append their own rows; both sides must
  // serialize on the checkpoint mutex (TSan guards this test).
  sweep::SweepSpec spec = tiny_spec();
  spec.max_cell_bytes = 100 * 1024;
  spec.num_threads = 8;
  const std::string path = temp_path("budget.jsonl");
  spec.checkpoint_path = path;
  const sweep::SweepResult result = sweep::run_sweep(spec);
  const auto file = resilience::load_checkpoint(path);
  EXPECT_FALSE(file.truncated_tail);
  ASSERT_EQ(file.rows.size(), result.tasks.size());
  std::size_t skipped = 0;
  for (const auto& row : file.rows) {
    if (const auto* v = row.find("skipped")) {
      skipped += v->as_bool() ? 1 : 0;
    }
  }
  EXPECT_EQ(skipped, 2u);
  std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, DuplicateRowIsRejectedAsCorruption) {
  sweep::SweepSpec spec = tiny_spec();
  const sweep::SweepResult reference = sweep::run_sweep(spec);
  const std::string path = temp_path("duplicate.jsonl");
  sweep::write_sweep_checkpoint(path, spec, reference.tasks);
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 2u);
  {
    std::ofstream out(path, std::ios::trunc);
    for (const std::string& line : lines) {
      out << line << '\n';
    }
    out << lines[1] << '\n';  // the same task index appears twice
  }
  EXPECT_THROW(sweep::load_sweep_checkpoint(path, spec), CheckError);
  std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, AtomicWriterPreservesOldFileUntilPublish) {
  const std::string path = temp_path("atomic.jsonl");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\": \"old\"}\n{\"index\": 0}\n";
  }
  {
    resilience::CheckpointWriter writer(path, "{\"schema\": \"new\"}", 1,
                                        /*replace_atomically=*/true);
    writer.append_row("{\"index\": 7}");
    writer.flush();
    // Until publish(), the original checkpoint is untouched.
    const auto before = resilience::load_checkpoint(path);
    EXPECT_EQ(before.header.at("schema").as_string(), "old");
    ASSERT_EQ(before.rows.size(), 1u);

    writer.publish();
    const auto after = resilience::load_checkpoint(path);
    EXPECT_EQ(after.header.at("schema").as_string(), "new");
    ASSERT_EQ(after.rows.size(), 1u);
    EXPECT_EQ(after.rows[0].at("index").as_i64(), 7);
    EXPECT_FALSE(std::ifstream(tmp).good()) << "tmp must be renamed away";

    // The renamed stream keeps appending to the published file.
    writer.append_row("{\"index\": 8}");
    writer.flush();
  }
  const auto final_file = resilience::load_checkpoint(path);
  ASSERT_EQ(final_file.rows.size(), 2u);
  EXPECT_EQ(final_file.rows[1].at("index").as_i64(), 8);

  // An unpublished writer cleans up its temporary and leaves the
  // original authoritative.
  {
    resilience::CheckpointWriter writer(path, "{\"schema\": \"later\"}", 1,
                                        /*replace_atomically=*/true);
    writer.append_row("{\"index\": 9}");
  }
  EXPECT_FALSE(std::ifstream(tmp).good());
  EXPECT_EQ(resilience::load_checkpoint(path).rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, KilledSweepResumesByteIdentical) {
  sweep::SweepSpec spec = tiny_spec();
  spec.kinds = {sweep::TaskKind::kSimulate, sweep::TaskKind::kLiveness,
                sweep::TaskKind::kBoundCheck};
  const sweep::SweepResult reference = sweep::run_sweep(spec);

  const std::string path = temp_path("resume.jsonl");
  sweep::SweepSpec checkpointed = spec;
  checkpointed.checkpoint_path = path;
  const sweep::SweepResult full = sweep::run_sweep(checkpointed);
  EXPECT_EQ(full.to_json(), reference.to_json())
      << "checkpointing must not perturb the payload";

  // Simulate a kill: drop the last two rows and tear the new last line.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  ASSERT_EQ(lines.size(), 1 + reference.tasks.size());
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i + 2 < lines.size(); ++i) {
      out << lines[i] << '\n';
    }
    out << lines[lines.size() - 2].substr(
        0, lines[lines.size() - 2].size() / 2);  // torn mid-write
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Each resume rewrites the checkpoint, so re-tear it per thread
    // count from a fresh copy.
    {
      std::ofstream out(path, std::ios::trunc);
      for (std::size_t i = 0; i + 2 < lines.size(); ++i) {
        out << lines[i] << '\n';
      }
      out << lines[lines.size() - 2].substr(
          0, lines[lines.size() - 2].size() / 2);
    }
    sweep::SweepSpec resumed = spec;
    resumed.checkpoint_path = path;
    resumed.resume = true;
    resumed.num_threads = threads;
    const sweep::SweepResult result = sweep::run_sweep(resumed);
    EXPECT_EQ(result.to_json(), reference.to_json())
        << "resumed sweep diverged at " << threads << " threads";
    EXPECT_EQ(result.resilience_json(), reference.resilience_json());
  }
  std::remove(path.c_str());
}

TEST(ResilienceCheckpoint, ResumeRestoresRetriedRowsVerbatim) {
  sweep::SweepSpec spec = tiny_spec();
  spec.retry.max_attempts = 4;
  spec.inject_failure_rate = 0.4;
  spec.inject_seed = 7;
  spec.keep_going = true;
  const sweep::SweepResult reference = sweep::run_sweep(spec);

  const std::string path = temp_path("retry_resume.jsonl");
  sweep::write_sweep_checkpoint(path, spec, reference.tasks);
  const auto restored = sweep::load_sweep_checkpoint(path, spec);
  ASSERT_EQ(restored.size(), reference.tasks.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(sweep::task_row_json(restored[i]),
              sweep::task_row_json(reference.tasks[i]));
  }

  // A fully-restored resume runs zero new tasks and still re-renders the
  // identical report.
  sweep::SweepSpec resumed = spec;
  resumed.checkpoint_path = path;
  resumed.resume = true;
  const sweep::SweepResult result = sweep::run_sweep(resumed);
  EXPECT_EQ(result.to_json(), reference.to_json());
  std::remove(path.c_str());
}

}  // namespace
