// Tests for the element-level distributed simulator (parallel/distsim):
// conservation laws, scaling shape, and consistency with the closed-form
// CAPS model and the Theorem 1.1 parallel bound.
#include <gtest/gtest.h>

#include "bounds/formulas.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "parallel/caps.hpp"
#include "parallel/distsim.hpp"

namespace fmm::parallel {
namespace {

TEST(DistSim, SingleProcessorMovesNothing) {
  const DistSimResult r = simulate_caps_elementwise(64, 1);
  EXPECT_EQ(r.total_words(), 0);
  EXPECT_EQ(r.max_words_per_proc(), 0);
  EXPECT_EQ(r.bfs_steps, 0);
}

TEST(DistSim, SentEqualsReceived) {
  for (const std::int64_t p : {7, 49}) {
    const DistSimResult r = simulate_caps_elementwise(64, p);
    std::int64_t sent = 0, received = 0;
    for (std::size_t q = 0; q < r.sent.size(); ++q) {
      sent += r.sent[q];
      received += r.received[q];
    }
    EXPECT_EQ(sent, received) << "P=" << p;
    EXPECT_GT(sent, 0) << "P=" << p;
  }
}

TEST(DistSim, QuadraticInN) {
  // Communication is Θ(n^2) at fixed P: quadrupling n multiplies words
  // by 16.
  const DistSimResult small = simulate_caps_elementwise(64, 7);
  const DistSimResult large = simulate_caps_elementwise(256, 7);
  EXPECT_EQ(large.total_words(), 16 * small.total_words());
}

TEST(DistSim, StrongScalingReducesPerProcWords) {
  const std::int64_t n = 256;
  std::int64_t prev = INT64_MAX;
  for (const std::int64_t p : {7, 49, 343}) {
    const DistSimResult r = simulate_caps_elementwise(n, p);
    EXPECT_LT(r.max_words_per_proc(), prev) << "P=" << p;
    prev = r.max_words_per_proc();
  }
}

TEST(DistSim, AboveMemoryIndependentBound) {
  // Exact word counts respect Ω(n^2 / P^{2/ω0}).
  for (const std::int64_t p : {7, 49, 343}) {
    const std::int64_t n = 256;
    const DistSimResult r = simulate_caps_elementwise(n, p);
    const double bound = bounds::fast_memory_independent(
        {static_cast<double>(n), 1.0, static_cast<double>(p)}, kOmega0);
    EXPECT_GE(static_cast<double>(r.max_words_per_proc()), bound)
        << "P=" << p;
  }
}

TEST(DistSim, WithinConstantOfFormulaModel) {
  // The elementwise counts (no multicast, per-use transfers) sit above
  // the closed-form model by a bounded factor.
  for (const std::int64_t p : {7, 49}) {
    for (const std::int64_t n : {64, 256}) {
      const DistSimResult exact = simulate_caps_elementwise(n, p);
      const CapsResult model = simulate_caps(n, p);
      const double ratio = static_cast<double>(exact.max_words_per_proc()) /
                           static_cast<double>(model.words_per_proc);
      EXPECT_GT(ratio, 0.5) << "n=" << n << " P=" << p;
      EXPECT_LT(ratio, 8.0) << "n=" << n << " P=" << p;
    }
  }
}

TEST(DistSim, BfsStepCountMatchesRecursion) {
  // One BFS split per internal recursion node with |group| > 1:
  // P=7: 1 split at the top.  P=49: 1 + 7 = 8 splits.
  EXPECT_EQ(simulate_caps_elementwise(64, 7).bfs_steps, 1);
  EXPECT_EQ(simulate_caps_elementwise(64, 49).bfs_steps, 8);
}

TEST(DistSim, RejectsBadArguments) {
  EXPECT_THROW(simulate_caps_elementwise(63, 7), CheckError);
  EXPECT_THROW(simulate_caps_elementwise(64, 6), CheckError);
  EXPECT_THROW(simulate_caps_elementwise(2, 49), CheckError);
}

}  // namespace
}  // namespace fmm::parallel
