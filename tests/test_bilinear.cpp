// Tests for bilinear algorithms: exact Brent-equation validity for the
// whole catalog, recursive executor correctness against the classical
// oracle, exact operation counting, tensor products and duals.
#include <gtest/gtest.h>

#include <cmath>

#include "bilinear/algorithm.hpp"
#include "bilinear/catalog.hpp"
#include "bilinear/executor.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "linalg/matmul.hpp"

namespace fmm::bilinear {
namespace {

using linalg::fill_random;
using linalg::Mat;
using linalg::max_abs_diff;
using linalg::multiply_naive;

// ---------------------------------------------------------------------
// Validity of the catalog (Brent equations, exact integer arithmetic).
// ---------------------------------------------------------------------

struct AlgCase {
  std::string label;
  BilinearAlgorithm algorithm;
};

std::vector<AlgCase> validity_cases() {
  std::vector<AlgCase> cases;
  cases.push_back({"classic222", classic(2, 2, 2)});
  cases.push_back({"classic333", classic(3, 3, 3)});
  cases.push_back({"classic123", classic(1, 2, 3)});
  cases.push_back({"strassen", strassen()});
  cases.push_back({"winograd", winograd()});
  cases.push_back({"strassen_transposed", strassen_transposed()});
  cases.push_back({"strassen_permuted", strassen_permuted()});
  cases.push_back({"winograd_transposed", winograd_transposed()});
  cases.push_back({"strassen_squared", strassen_squared()});
  cases.push_back({"rect_2x2x4", rect_2x2x4()});
  cases.push_back({"rect_4x2x2", rect_4x2x2()});
  return cases;
}

class CatalogValidity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogValidity, BrentEquationsHold) {
  const AlgCase c = validity_cases()[GetParam()];
  const auto violation = c.algorithm.first_brent_violation();
  EXPECT_FALSE(violation.has_value())
      << c.label << ": " << violation.value_or("");
}

INSTANTIATE_TEST_SUITE_P(AllCatalog, CatalogValidity,
                         ::testing::Range<std::size_t>(0, 11),
                         [](const auto& param_info) {
                           return validity_cases()[param_info.param].label;
                         });

TEST(Validity, BrokenAlgorithmDetected) {
  BilinearAlgorithm bad = strassen();
  // Flip one coefficient: validity must break.
  IntMat u = bad.u();
  u.at(0, 0) = -u.at(0, 0);
  const BilinearAlgorithm broken("broken", 2, 2, 2, u, bad.v(), bad.w());
  EXPECT_FALSE(broken.is_valid());
  EXPECT_TRUE(broken.first_brent_violation().has_value());
}

// ---------------------------------------------------------------------
// Structural properties.
// ---------------------------------------------------------------------

TEST(Structure, StrassenShape) {
  const BilinearAlgorithm s = strassen();
  EXPECT_EQ(s.n(), 2u);
  EXPECT_TRUE(s.is_square());
  EXPECT_EQ(s.num_products(), 7u);
  EXPECT_NEAR(s.omega(), kOmega0, 1e-12);
}

TEST(Structure, ClassicProductCount) {
  EXPECT_EQ(classic(2, 2, 2).num_products(), 8u);
  EXPECT_EQ(classic(3, 2, 4).num_products(), 24u);
  EXPECT_EQ(classic(2, 2, 2).omega(), 3.0);
}

TEST(Structure, StrassenNaiveAdditionCount) {
  // Classical Strassen: 18 additions at the base case.
  EXPECT_EQ(strassen().base_linear_ops(), 18u);
  EXPECT_NEAR(strassen().leading_coefficient(), 7.0, 1e-12);
}

TEST(Structure, WinogradSharedCircuitCount) {
  // Winograd with common subexpressions: 4 + 4 + 7 = 15 additions.
  const BilinearAlgorithm w = winograd();
  EXPECT_EQ(w.encoder_a_circuit().num_ops(), 4u);
  EXPECT_EQ(w.encoder_b_circuit().num_ops(), 4u);
  EXPECT_EQ(w.decoder_circuit().num_ops(), 7u);
  EXPECT_EQ(w.base_linear_ops(), 15u);
  EXPECT_NEAR(w.leading_coefficient(), 6.0, 1e-12);
}

TEST(Structure, CircuitsComputeCoefficientMatrices) {
  for (const auto& alg : all_fast_2x2_algorithms()) {
    EXPECT_TRUE(alg.encoder_a_circuit().computes(alg.u())) << alg.name();
    EXPECT_TRUE(alg.encoder_b_circuit().computes(alg.v())) << alg.name();
    EXPECT_TRUE(alg.decoder_circuit().computes(alg.w())) << alg.name();
  }
}

TEST(Structure, WrongCircuitRejected) {
  BilinearAlgorithm s = strassen();
  // The Winograd A-encoder does not compute Strassen's U.
  const BilinearAlgorithm w = winograd();
  EXPECT_THROW(s.set_circuits(w.encoder_a_circuit(), w.encoder_b_circuit(),
                              w.decoder_circuit()),
               CheckError);
}

TEST(Structure, EncoderBipartiteDegrees) {
  const auto g = strassen().encoder_bipartite(Side::kA);
  EXPECT_EQ(g.n_left(), 4u);
  EXPECT_EQ(g.n_right(), 7u);
  // nnz(U) = 12 edges for Strassen's A encoder.
  EXPECT_EQ(g.num_edges(), 12u);
}

TEST(Structure, ProductSupports) {
  const auto supports = strassen().product_supports(Side::kA);
  ASSERT_EQ(supports.size(), 7u);
  EXPECT_EQ(supports[0], (std::vector<std::size_t>{0, 3}));  // A11+A22
  EXPECT_EQ(supports[2], (std::vector<std::size_t>{0}));     // A11
}

// ---------------------------------------------------------------------
// Transpose dual and permutation conjugation.
// ---------------------------------------------------------------------

TEST(Transforms, TransposeDualOfRectangular) {
  const BilinearAlgorithm r = rect_2x2x4();  // <2,2,4;14>
  const BilinearAlgorithm d = r.transpose_dual();
  EXPECT_EQ(d.n(), 4u);
  EXPECT_EQ(d.m(), 2u);
  EXPECT_EQ(d.p(), 2u);
  EXPECT_TRUE(d.is_valid());
}

TEST(Transforms, DualIsInvolutionOnShape) {
  const BilinearAlgorithm d2 = strassen().transpose_dual().transpose_dual();
  EXPECT_EQ(d2.n(), 2u);
  EXPECT_TRUE(d2.is_valid());
  // Double dual recovers the original coefficients.
  EXPECT_EQ(d2.u(), strassen().u());
  EXPECT_EQ(d2.v(), strassen().v());
  EXPECT_EQ(d2.w(), strassen().w());
}

TEST(Transforms, PermutationPreservesValidity) {
  const BilinearAlgorithm p =
      permute_base(winograd(), {1, 0}, {0, 1}, {1, 0});
  EXPECT_TRUE(p.is_valid());
  EXPECT_NE(p.u(), winograd().u());
}

TEST(Transforms, DualPreservesSharedCircuits) {
  // The transpose dual transports the Winograd circuits, keeping the
  // 15-addition count (naive circuits would cost 24).
  const BilinearAlgorithm dual = winograd_transposed();
  EXPECT_EQ(dual.base_linear_ops(), 15u);
  EXPECT_NEAR(dual.leading_coefficient(), 6.0, 1e-12);
  EXPECT_TRUE(dual.encoder_a_circuit().computes(dual.u()));
  EXPECT_TRUE(dual.encoder_b_circuit().computes(dual.v()));
  EXPECT_TRUE(dual.decoder_circuit().computes(dual.w()));
}

TEST(Transforms, PermutationPreservesSharedCircuits) {
  const BilinearAlgorithm p =
      permute_base(winograd(), {1, 0}, {1, 0}, {0, 1});
  EXPECT_EQ(p.base_linear_ops(), 15u);
  EXPECT_TRUE(p.encoder_a_circuit().computes(p.u()));
  EXPECT_TRUE(p.decoder_circuit().computes(p.w()));
}

TEST(Transforms, DualDiffersFromOriginal) {
  EXPECT_NE(strassen_transposed().u(), strassen().u());
  EXPECT_NE(strassen_permuted().u(), strassen().u());
}

// ---------------------------------------------------------------------
// Tensor products.
// ---------------------------------------------------------------------

TEST(Tensor, ShapeAndCount) {
  const BilinearAlgorithm sq = strassen_squared();
  EXPECT_EQ(sq.n(), 4u);
  EXPECT_EQ(sq.num_products(), 49u);
  EXPECT_NEAR(sq.omega(), kOmega0, 1e-12);  // log4(49) == log2(7)
}

TEST(Tensor, RectangularShapes) {
  const BilinearAlgorithm r = rect_2x2x4();
  EXPECT_EQ(r.n(), 2u);
  EXPECT_EQ(r.m(), 2u);
  EXPECT_EQ(r.p(), 4u);
  EXPECT_EQ(r.num_products(), 14u);
}

TEST(Tensor, ClassicTensorClassicIsClassic) {
  const BilinearAlgorithm t =
      BilinearAlgorithm::tensor(classic(2, 1, 1), classic(1, 2, 1));
  EXPECT_EQ(t.n(), 2u);
  EXPECT_EQ(t.m(), 2u);
  EXPECT_EQ(t.p(), 1u);
  EXPECT_TRUE(t.is_valid());
  EXPECT_EQ(t.num_products(), 4u);
}

// ---------------------------------------------------------------------
// Recursive executor: numerical correctness and operation counts.
// ---------------------------------------------------------------------

class ExecutorCorrectness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ExecutorCorrectness, MatchesClassicalOracle) {
  const auto [alg_index, size] = GetParam();
  const auto algorithms = all_fast_2x2_algorithms();
  const BilinearAlgorithm& alg = algorithms[alg_index];
  RecursiveExecutor executor(alg);
  Mat a(size, size), b(size, size);
  fill_random(a, 1000 + alg_index);
  fill_random(b, 2000 + size);
  const Mat fast = executor.multiply(a, b);
  const Mat oracle = multiply_naive(a, b);
  EXPECT_LT(max_abs_diff(fast, oracle), 1e-8)
      << alg.name() << " at n=" << size;
}

INSTANTIATE_TEST_SUITE_P(
    AllFast2x2, ExecutorCorrectness,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 3, 4),
                       ::testing::Values<std::size_t>(2, 4, 8, 16, 32)));

TEST(Executor, StrassenSquaredCorrect) {
  const BilinearAlgorithm sq = strassen_squared();
  RecursiveExecutor executor(sq);
  Mat a(16, 16), b(16, 16);
  fill_random(a, 7);
  fill_random(b, 8);
  EXPECT_LT(max_abs_diff(executor.multiply(a, b), multiply_naive(a, b)),
            1e-8);
}

TEST(Executor, CutoffChangesNothingNumerically) {
  const BilinearAlgorithm s = strassen();
  Mat a(16, 16), b(16, 16);
  fill_random(a, 70);
  fill_random(b, 80);
  const Mat oracle = multiply_naive(a, b);
  for (const std::size_t cutoff : {1u, 2u, 4u, 8u, 16u}) {
    RecursiveExecutor executor(s, cutoff);
    EXPECT_LT(max_abs_diff(executor.multiply(a, b), oracle), 1e-8)
        << "cutoff=" << cutoff;
  }
}

TEST(Executor, PaddedMultiplyArbitraryShape) {
  const BilinearAlgorithm s = strassen();
  RecursiveExecutor executor(s);
  Mat a(5, 7), b(7, 3);
  fill_random(a, 11);
  fill_random(b, 12);
  const Mat c = executor.multiply_padded(a, b);
  EXPECT_EQ(c.rows(), 5u);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_LT(max_abs_diff(c, multiply_naive(a, b)), 1e-8);
}

TEST(Executor, MeasuredCountsMatchPrediction) {
  for (const auto& alg : all_fast_2x2_algorithms()) {
    for (const std::size_t n : {2u, 4u, 8u, 16u}) {
      RecursiveExecutor executor(alg);
      Mat a(n, n), b(n, n);
      fill_random(a, n);
      fill_random(b, n + 1);
      executor.multiply(a, b);
      const OpCount predicted = executor.predicted_count(n);
      EXPECT_EQ(executor.op_count().multiplications,
                predicted.multiplications)
          << alg.name() << " n=" << n;
      EXPECT_EQ(executor.op_count().additions, predicted.additions)
          << alg.name() << " n=" << n;
    }
  }
}

TEST(Executor, MultiplicationCountIsNPowOmega) {
  RecursiveExecutor executor(strassen());
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const OpCount predicted = executor.predicted_count(n);
    const auto levels = ilog2_floor(n);
    EXPECT_EQ(predicted.multiplications, pow7(levels)) << "n=" << n;
  }
}

TEST(Executor, LeadingCoefficientConvergence) {
  // flops(n) / n^{log2 7} must approach the leading coefficient from
  // below: 7 for Strassen, 6 for Winograd.
  for (const auto& [alg, coef] :
       std::vector<std::pair<BilinearAlgorithm, double>>{
           {strassen(), 7.0}, {winograd(), 6.0}}) {
    RecursiveExecutor executor(alg);
    const std::size_t n = 512;
    const OpCount predicted = executor.predicted_count(n);
    const double normalized =
        static_cast<double>(predicted.multiplications + predicted.additions) /
        fpow(static_cast<double>(n), kOmega0);
    EXPECT_GT(normalized, coef - 0.35) << alg.name();
    EXPECT_LT(normalized, coef) << alg.name();
  }
}

TEST(Executor, ClassicBaseRecursionWorks) {
  // The classical algorithm run through the same recursive machinery.
  const BilinearAlgorithm c8 = classic(2, 2, 2);
  RecursiveExecutor executor(c8);
  Mat a(8, 8), b(8, 8);
  fill_random(a, 3);
  fill_random(b, 4);
  EXPECT_LT(max_abs_diff(executor.multiply(a, b), multiply_naive(a, b)),
            1e-9);
  // 8^{log2 8} = 512 multiplications.
  EXPECT_EQ(executor.op_count().multiplications, 512);
}

TEST(Executor, RectangularBaseRejected) {
  const BilinearAlgorithm r = rect_2x2x4();
  EXPECT_THROW(RecursiveExecutor executor(r), CheckError);
}

TEST(Executor, NonPowerDimensionRejected) {
  RecursiveExecutor executor(strassen());
  Mat a(6, 6), b(6, 6);
  EXPECT_THROW(executor.multiply(a, b), CheckError);
}

}  // namespace
}  // namespace fmm::bilinear
