// Unit tests for bipartite matching and Hall-condition certification.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/bipartite.hpp"

namespace fmm::graph {
namespace {

TEST(Bipartite, Construction) {
  BipartiteGraph g(3, 4);
  g.add_edge(0, 0);
  g.add_edge(0, 3);
  EXPECT_EQ(g.n_left(), 3u);
  EXPECT_EQ(g.n_right(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(Bipartite, EdgeOutOfRangeThrows) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), CheckError);
  EXPECT_THROW(g.add_edge(0, 2), CheckError);
}

TEST(Bipartite, Neighborhood) {
  BipartiteGraph g(3, 5);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(1, 4);
  EXPECT_EQ(g.neighborhood({0, 1}), (std::vector<std::size_t>{1, 4}));
  EXPECT_TRUE(g.neighborhood({2}).empty());
}

TEST(Matching, PerfectMatchingOnIdentity) {
  BipartiteGraph g(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    g.add_edge(i, i);
  }
  const MatchingResult m = max_matching(g);
  EXPECT_EQ(m.size, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.match_left[i], i);
    EXPECT_EQ(m.match_right[i], i);
  }
}

TEST(Matching, CompleteBipartite) {
  BipartiteGraph g(3, 5);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t r = 0; r < 5; ++r) {
      g.add_edge(l, r);
    }
  }
  EXPECT_EQ(max_matching(g).size, 3u);
}

TEST(Matching, DeficientGraph) {
  // Two left vertices share a single right neighbor.
  BipartiteGraph g(2, 1);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  EXPECT_EQ(max_matching(g).size, 1u);
  EXPECT_EQ(hall_deficiency(g), 1u);
}

TEST(Matching, AugmentingPathNeeded) {
  // Greedy left-to-right would mismatch; Hopcroft–Karp must augment.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(max_matching(g).size, 2u);
}

TEST(Matching, EmptyGraph) {
  BipartiteGraph g(3, 3);
  EXPECT_EQ(max_matching(g).size, 0u);
  EXPECT_EQ(hall_deficiency(g), 3u);
}

TEST(Matching, MatchingIsConsistent) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    BipartiteGraph g(6, 6);
    for (std::size_t l = 0; l < 6; ++l) {
      for (std::size_t r = 0; r < 6; ++r) {
        if (rng.bernoulli(0.4)) {
          g.add_edge(l, r);
        }
      }
    }
    const MatchingResult m = max_matching(g);
    std::size_t count = 0;
    for (std::size_t l = 0; l < 6; ++l) {
      if (m.match_left[l] != MatchingResult::npos) {
        ++count;
        EXPECT_EQ(m.match_right[m.match_left[l]], l);
      }
    }
    EXPECT_EQ(count, m.size);
  }
}

TEST(Matching, AgreesWithDeficiencyFormula) {
  // König duality: max matching = n_left - max_W (|W| - |N(W)|); verify
  // against exhaustive subset enumeration on random graphs.
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t nl = 5, nr = 4;
    BipartiteGraph g(nl, nr);
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t r = 0; r < nr; ++r) {
        if (rng.bernoulli(0.35)) {
          g.add_edge(l, r);
        }
      }
    }
    std::size_t max_deficiency = 0;
    for (std::uint32_t mask = 0; mask < (1u << nl); ++mask) {
      std::vector<std::size_t> subset;
      for (std::size_t l = 0; l < nl; ++l) {
        if (mask & (1u << l)) {
          subset.push_back(l);
        }
      }
      const std::size_t nbhd = g.neighborhood(subset).size();
      if (subset.size() > nbhd) {
        max_deficiency = std::max(max_deficiency, subset.size() - nbhd);
      }
    }
    EXPECT_EQ(max_matching(g).size, nl - max_deficiency) << "trial " << trial;
  }
}

TEST(Hall, HoldsOnPerfectMatching) {
  BipartiteGraph g(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    g.add_edge(i, i);
    g.add_edge(i, (i + 1) % 3);
  }
  EXPECT_FALSE(find_hall_violation(g).has_value());
}

TEST(Hall, DetectsViolationWithWitness) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  const auto violation = find_hall_violation(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->witness_set, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(violation->neighborhood_size, 1u);
}

TEST(Hall, IsolatedLeftVertexViolates) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  const auto violation = find_hall_violation(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->witness_set, (std::vector<std::size_t>{1}));
}

TEST(Induced, SubgraphRenumbering) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  g.add_edge(2, 2);
  g.add_edge(0, 2);
  const BipartiteGraph sub = g.induced({0, 2}, {2});
  EXPECT_EQ(sub.n_left(), 2u);
  EXPECT_EQ(sub.n_right(), 1u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0->2 and 2->2 both map to right 0
  EXPECT_EQ(max_matching(sub).size, 1u);
}

TEST(Transpose, SwapsSides) {
  BipartiteGraph g(2, 3);
  g.add_edge(0, 2);
  g.add_edge(1, 0);
  const BipartiteGraph t = g.transpose();
  EXPECT_EQ(t.n_left(), 3u);
  EXPECT_EQ(t.n_right(), 2u);
  EXPECT_EQ(t.neighbors(2), (std::vector<std::size_t>{0}));
  EXPECT_EQ(t.neighbors(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(max_matching(g).size, max_matching(t).size);
}

}  // namespace
}  // namespace fmm::graph
