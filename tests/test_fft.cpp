// Tests for the FFT substrate: transform correctness, butterfly CDAG,
// and blocked out-of-core I/O counting vs the Table I formula.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/formulas.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/fft_cdag.hpp"
#include "fft/fft_io.hpp"
#include "fft/fft_parallel.hpp"
#include "graph/vertex_cut.hpp"

namespace fmm::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> data(n);
  for (auto& x : data) {
    x = Complex(rng.uniform_double(-1, 1), rng.uniform_double(-1, 1));
  }
  return data;
}

double max_error(const std::vector<Complex>& a,
                 const std::vector<Complex>& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Fft, MatchesNaiveDft) {
  for (const std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    auto data = random_signal(n, n);
    const auto expected = dft_naive(data);
    fft_inplace(data);
    EXPECT_LT(max_error(data, expected), 1e-9 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<Complex> data{Complex(3.0, -1.0)};
  fft_inplace(data);
  EXPECT_EQ(data[0], Complex(3.0, -1.0));
}

TEST(Fft, InverseRoundTrip) {
  for (const std::size_t n : {8u, 64u, 1024u}) {
    const auto original = random_signal(n, 2 * n);
    auto data = original;
    fft_inplace(data);
    ifft_inplace(data);
    EXPECT_LT(max_error(data, original), 1e-10 * static_cast<double>(n));
  }
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<Complex> data(6);
  EXPECT_THROW(fft_inplace(data), CheckError);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Complex> data(8, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft_inplace(data);
  for (const Complex& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 64;
  auto data = random_signal(n, 7);
  double time_energy = 0;
  for (const Complex& x : data) {
    time_energy += std::norm(x);
  }
  fft_inplace(data);
  double freq_energy = 0;
  for (const Complex& x : data) {
    freq_energy += std::norm(x);
  }
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-8 * freq_energy);
}

TEST(Fft, FlopCountFormula) {
  EXPECT_EQ(fft_flops(2), 10);        // 1 butterfly
  EXPECT_EQ(fft_flops(8), 120);       // 12 butterflies
  EXPECT_EQ(fft_flops(1024), 10 * 512 * 10);
}

TEST(Fft, ConvolutionAgainstDirect) {
  const std::size_t n = 16;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  const auto fast = convolve(a, b);
  // Direct circular convolution.
  std::vector<Complex> direct(n, Complex(0, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      direct[(i + j) % n] += a[i] * b[j];
    }
  }
  EXPECT_LT(max_error(fast, direct), 1e-10 * static_cast<double>(n));
}

TEST(FftCdag, StructureCounts) {
  for (const std::size_t n : {2u, 8u, 64u}) {
    const FftCdag cdag = build_fft_cdag(n);
    cdag.validate();
    const std::size_t levels =
        static_cast<std::size_t>(std::log2(static_cast<double>(n)));
    EXPECT_EQ(cdag.graph.num_vertices(), n * (levels + 1));
    EXPECT_EQ(cdag.graph.num_edges(), 2 * n * levels);
  }
}

TEST(FftCdag, ButterflyConnectivity) {
  const FftCdag cdag = build_fft_cdag(4);
  // Level 1 vertex at position 0 depends on inputs 0 and 1.
  const auto& preds = cdag.graph.in_neighbors(cdag.inputs[0] + 4);
  EXPECT_EQ(preds.size(), 2u);
}

TEST(FftCdag, EveryOutputDependsOnEveryInput) {
  const FftCdag cdag = build_fft_cdag(16);
  const auto reach = cdag.graph.reachable_from({cdag.inputs[5]});
  for (const graph::VertexId out : cdag.outputs) {
    EXPECT_TRUE(reach[out]);
  }
}

TEST(FftCdag, MinDominatorOfAllOutputsIsN) {
  // The butterfly is a permutation network: the n outputs are connected
  // to the n inputs by n vertex-disjoint paths (take any level's full
  // cut), so the minimum dominator of all outputs has size exactly n.
  const FftCdag cdag = build_fft_cdag(8);
  const auto cut =
      graph::min_vertex_cut(cdag.graph, cdag.inputs, cdag.outputs);
  EXPECT_EQ(cut.cut_size, 8u);
}

TEST(FftIo, InCacheIsOnePass) {
  const FftIoResult r = blocked_fft_io(1024, 2048);
  EXPECT_EQ(r.reads, 1024);
  EXPECT_EQ(r.writes, 1024);
  EXPECT_EQ(r.passes, 1);
}

TEST(FftIo, OutOfCoreCountsMultiplePasses) {
  const FftIoResult r = blocked_fft_io(1 << 20, 1 << 10);
  EXPECT_EQ(r.passes, 2);  // sqrt split: both factors fit
  EXPECT_EQ(r.total(), 2 * 2 * (1 << 20));
}

TEST(FftIo, DeepRecursionPasses) {
  // n = M^4 requires ceil(log_M n) = 4 passes.
  const FftIoResult r = blocked_fft_io(1 << 16, 1 << 4);
  EXPECT_GE(r.passes, 4);
  EXPECT_LE(r.passes, 5);
}

TEST(FftIo, TracksTableIFormulaShape) {
  // Measured I/O / (n log n / log M) bounded by small constants.
  for (const std::int64_t n : {1 << 12, 1 << 16, 1 << 20}) {
    for (const std::int64_t m : {1 << 4, 1 << 8}) {
      const FftIoResult r = blocked_fft_io(n, m);
      const double bound = bounds::fft_memory_dependent(
          static_cast<double>(n), static_cast<double>(m), 1.0);
      const double ratio = static_cast<double>(r.total()) / bound;
      EXPECT_GT(ratio, 0.5) << "n=" << n << " M=" << m;
      EXPECT_LT(ratio, 8.0) << "n=" << n << " M=" << m;
    }
  }
}

TEST(FftParallel, SingleProcessorIsFree) {
  EXPECT_EQ(fft_parallel_binary_exchange(1 << 10, 1).words_per_proc, 0);
  EXPECT_EQ(fft_parallel_transpose(1 << 10, 1).words_per_proc, 0);
}

TEST(FftParallel, BinaryExchangeClosedForm) {
  // (2 n / P) * log2(P) words per processor.
  const auto r = fft_parallel_binary_exchange(1 << 12, 1 << 4);
  EXPECT_EQ(r.comm_stages, 4);
  EXPECT_EQ(r.words_per_proc, 2 * (1 << 8) * 4);
}

TEST(FftParallel, TransposeBeatsBinaryExchangeAtScale) {
  // With many processors the transpose method's ceil(log n / log(n/P))
  // exchanges beat binary exchange's log P stages.
  const std::int64_t n = 1 << 20;
  const std::int64_t p = 1 << 10;
  const auto bx = fft_parallel_binary_exchange(n, p);
  const auto tr = fft_parallel_transpose(n, p);
  EXPECT_LT(tr.words_per_proc, bx.words_per_proc);
  EXPECT_LT(tr.comm_stages, bx.comm_stages);
}

TEST(FftParallel, AboveMemoryIndependentBound) {
  // Both methods respect Table I's Ω(n log n / (P log(n/P))) within a
  // constant (the bound counts words; exchanges count send+receive).
  for (const std::int64_t p : {4, 64, 1024}) {
    const std::int64_t n = 1 << 16;
    const double bound = bounds::fft_memory_independent(
        static_cast<double>(n), static_cast<double>(p));
    const auto bx = fft_parallel_binary_exchange(n, p);
    const auto tr = fft_parallel_transpose(n, p);
    EXPECT_GE(static_cast<double>(bx.words_per_proc), bound / 4.0)
        << "P=" << p;
    EXPECT_GE(static_cast<double>(tr.words_per_proc), bound / 4.0)
        << "P=" << p;
  }
}

TEST(FftParallel, RejectsBadArguments) {
  EXPECT_THROW(fft_parallel_binary_exchange(1000, 4), CheckError);
  EXPECT_THROW(fft_parallel_binary_exchange(16, 32), CheckError);
  EXPECT_THROW(fft_parallel_transpose(16, 16), CheckError);  // local < 2
}

TEST(FftIo, RejectsBadArguments) {
  EXPECT_THROW(blocked_fft_io(1000, 16), CheckError);  // n not pow2
  EXPECT_THROW(blocked_fft_io(1024, 3), CheckError);   // m too small / odd
}

}  // namespace
}  // namespace fmm::fft
