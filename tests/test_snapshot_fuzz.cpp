// Malformed-snapshot fuzz battery (src/snapshot/format.hpp): every byte
// of an fmm.snap file is covered by exactly one of {header checksum,
// table checksum, a section checksum, must-be-zero padding}, so EVERY
// mutation — truncation, bit flip, zeroed word, tampered metadata with
// recomputed checksums, version/endianness forgery — must be refused by
// the Verify::kFull reader with a one-line CheckError, never accepted
// and never dereferenced out of bounds (the sanitize preset runs this
// battery under ASan/UBSan in CI).  The pristine file must keep
// round-tripping bit-identically after the battery, proving the mutants
// never touched shared state.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "snapshot/format.hpp"

namespace fmm::snapshot {
namespace {

const std::string& pristine_bytes() {
  static const std::string bytes =
      serialize_snapshot(cdag::build_cdag(bilinear::strassen(), 8));
  return bytes;
}

cdag::Cdag deserialize_copy(const std::string& bytes, Verify verify) {
  auto keep = std::make_shared<std::string>(bytes);
  return deserialize_snapshot(
      {reinterpret_cast<const std::byte*>(keep->data()), keep->size()},
      keep, verify);
}

/// Asserts the mutant is refused with a single-line diagnostic.  Returns
/// the message for optional content checks.
std::string expect_refused(const std::string& mutant, const char* what) {
  try {
    deserialize_copy(mutant, Verify::kFull);
  } catch (const CheckError& e) {
    const std::string message = e.what();
    EXPECT_EQ(message.find('\n'), std::string::npos)
        << what << ": diagnostic must be one line, got: " << message;
    EXPECT_FALSE(message.empty()) << what;
    return message;
  }
  ADD_FAILURE() << what << ": mutant was ACCEPTED";
  return {};
}

std::uint32_t read_u32(const std::string& bytes, std::size_t at) {
  std::uint32_t v;
  std::memcpy(&v, bytes.data() + at, sizeof(v));
  return v;
}

std::uint64_t read_u64(const std::string& bytes, std::size_t at) {
  std::uint64_t v;
  std::memcpy(&v, bytes.data() + at, sizeof(v));
  return v;
}

void write_u32(std::string& bytes, std::size_t at, std::uint32_t v) {
  std::memcpy(bytes.data() + at, &v, sizeof(v));
}

void write_u64(std::string& bytes, std::size_t at, std::uint64_t v) {
  std::memcpy(bytes.data() + at, &v, sizeof(v));
}

/// Recomputes every section checksum from the (possibly tampered)
/// table, then the table checksum, then the header checksum — the
/// strongest adversary: one who forges all integrity metadata and can
/// only be refused by the structural validation layer.
void fix_checksums(std::string& bytes) {
  const std::uint32_t section_count = read_u32(bytes, 24);
  const std::uint64_t table_bytes =
      std::uint64_t{section_count} * kSectionEntryBytes;
  // A forged section_count can point the table past the buffer; the
  // reader refuses that before ever reading the table, so the helper
  // only fixes what fits.
  if (kHeaderBytes + table_bytes <= bytes.size()) {
    for (std::uint32_t i = 0; i < section_count; ++i) {
      const std::size_t at = kHeaderBytes + i * kSectionEntryBytes;
      const std::uint64_t offset = read_u64(bytes, at + 8);
      const std::uint64_t length = read_u64(bytes, at + 16);
      if (offset <= bytes.size() && length <= bytes.size() - offset) {
        write_u64(bytes, at + 24,
                  snap_checksum(bytes.data() + offset, length));
      }
    }
    write_u64(bytes, 32,
              snap_checksum(bytes.data() + kHeaderBytes,
                            static_cast<std::size_t>(table_bytes)));
  }
  write_u64(bytes, 48, snap_checksum(bytes.data(), 48));
}

TEST(SnapshotFuzz, PristineRoundTripsBitIdentically) {
  const std::string& bytes = pristine_bytes();
  const cdag::Cdag loaded = deserialize_copy(bytes, Verify::kFull);
  EXPECT_EQ(bytes, serialize_snapshot(loaded));
  const cdag::Cdag mapped = deserialize_copy(bytes, Verify::kMapped);
  EXPECT_EQ(bytes, serialize_snapshot(mapped));
}

TEST(SnapshotFuzz, EveryTruncationIsRefused) {
  const std::string& bytes = pristine_bytes();
  // Boundary-dense truncation points: inside the header, inside the
  // table, at section boundaries, and a seeded spread over the payload.
  std::vector<std::size_t> cuts = {0,  1,  8,  63, 64, 65,
                                   kHeaderBytes + kSectionEntryBytes - 1};
  Rng rng(0x5eed5a9u);
  for (int i = 0; i < 48; ++i) {
    cuts.push_back(static_cast<std::size_t>(rng.uniform(bytes.size())));
  }
  cuts.push_back(bytes.size() - 1);
  for (const std::size_t cut : cuts) {
    expect_refused(bytes.substr(0, cut),
                   ("truncate to " + std::to_string(cut)).c_str());
  }
  // Appending trailing bytes must also be refused (file_bytes pins the
  // exact length).
  expect_refused(bytes + std::string(8, '\0'), "trailing bytes");
}

TEST(SnapshotFuzz, EveryBitFlipIsRefused) {
  const std::string& bytes = pristine_bytes();
  Rng rng(0xb17f11bu);
  for (int i = 0; i < 192; ++i) {
    const std::size_t at = static_cast<std::size_t>(
        rng.uniform(bytes.size()));
    const int bit = static_cast<int>(rng.uniform(8));
    std::string mutant = bytes;
    mutant[at] = static_cast<char>(mutant[at] ^ (1 << bit));
    expect_refused(mutant, ("bit flip at byte " + std::to_string(at) +
                            " bit " + std::to_string(bit))
                               .c_str());
  }
}

TEST(SnapshotFuzz, ZeroedWordsAreRefused) {
  const std::string& bytes = pristine_bytes();
  Rng rng(0x2e20edu);
  int mutations = 0;
  for (int i = 0; i < 64; ++i) {
    const std::size_t at = static_cast<std::size_t>(
        rng.uniform(bytes.size() - 8));
    std::string mutant = bytes;
    if (std::memcmp(mutant.data() + at, "\0\0\0\0\0\0\0\0", 8) == 0) {
      continue;  // zeroing zeros is not a mutation
    }
    std::memset(mutant.data() + at, 0, 8);
    expect_refused(mutant,
                   ("zeroed u64 at " + std::to_string(at)).c_str());
    ++mutations;
  }
  EXPECT_GT(mutations, 0);
}

TEST(SnapshotFuzz, ForeignMagicVersionAndEndiannessAreRefused) {
  const std::string& bytes = pristine_bytes();
  {
    std::string mutant = bytes;
    mutant[0] = 'X';
    fix_checksums(mutant);
    const std::string msg = expect_refused(mutant, "bad magic");
    EXPECT_NE(msg.find("magic"), std::string::npos) << msg;
  }
  {
    std::string mutant = bytes;
    write_u32(mutant, 8, kFormatVersion + 1);
    fix_checksums(mutant);
    const std::string msg = expect_refused(mutant, "future version");
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
  }
  {
    std::string mutant = bytes;
    write_u32(mutant, 12, 0x04030201u);  // byte-swapped endian tag
    fix_checksums(mutant);
    const std::string msg = expect_refused(mutant, "foreign endianness");
    EXPECT_NE(msg.find("endian"), std::string::npos) << msg;
  }
}

TEST(SnapshotFuzz, TamperedChecksumFieldsAreRefused) {
  const std::string& bytes = pristine_bytes();
  // Corrupt each checksum field WITHOUT fixing it up.
  for (const std::size_t at : {std::size_t{32}, std::size_t{48},
                               kHeaderBytes + kSectionEntryBytes - 8}) {
    std::string mutant = bytes;
    write_u64(mutant, at, read_u64(mutant, at) ^ 0xdeadbeefu);
    expect_refused(mutant,
                   ("checksum field at " + std::to_string(at)).c_str());
  }
}

TEST(SnapshotFuzz, OversizedCountsWithForgedChecksumsAreRefused) {
  const std::string& bytes = pristine_bytes();
  // Locate the meta section (canonically section 0, right after the
  // table) and tamper each u64 field to an absurd value, forging all
  // checksums so only the cap/consistency layer can refuse.
  const std::uint64_t meta_offset = read_u64(bytes, kHeaderBytes + 8);
  const char* fields[] = {"n",        "base",       "num_products",
                          "vertices", "edges",      "levels",
                          "name_len"};
  for (std::size_t f = 0; f < 7; ++f) {
    std::string mutant = bytes;
    write_u64(mutant, meta_offset + 8 * f, 1ull << 62);
    fix_checksums(mutant);
    expect_refused(mutant,
                   (std::string("oversized meta field ") + fields[f])
                       .c_str());
  }
  // Oversized section count (header) and section length (table).
  {
    std::string mutant = bytes;
    write_u32(mutant, 24, 1u << 30);
    fix_checksums(mutant);
    expect_refused(mutant, "oversized section count");
  }
  {
    std::string mutant = bytes;
    write_u64(mutant, kHeaderBytes + 16, 1ull << 62);
    fix_checksums(mutant);
    expect_refused(mutant, "oversized section length");
  }
  {
    // Break canonical layout: shift section 0's offset by one
    // alignment quantum (still in bounds, checksums forged).
    std::string mutant = bytes;
    write_u64(mutant, kHeaderBytes + 8,
              read_u64(mutant, kHeaderBytes + 8) + kSectionAlignment);
    fix_checksums(mutant);
    expect_refused(mutant, "non-canonical section offset");
  }
}

TEST(SnapshotFuzz, TamperedLevelStructureIsRefused) {
  const std::string& bytes = pristine_bytes();
  // level_meta is canonically section 1; its (r, count) pairs must obey
  // the base^i / t^(L-1-i) progressions even with forged checksums.
  const std::uint64_t lm_offset =
      read_u64(bytes, kHeaderBytes + kSectionEntryBytes + 8);
  for (const std::size_t field : {std::size_t{0}, std::size_t{8}}) {
    std::string mutant = bytes;
    write_u64(mutant, lm_offset + field,
              read_u64(mutant, lm_offset + field) + 1);
    fix_checksums(mutant);
    expect_refused(mutant, field == 0 ? "tampered level r"
                                      : "tampered level count");
  }
}

TEST(SnapshotFuzz, NonzeroPaddingIsRefused) {
  const std::string& bytes = pristine_bytes();
  // Header pad bytes [56, 64) must be zero.
  {
    std::string mutant = bytes;
    mutant[60] = 1;
    expect_refused(mutant, "nonzero header padding");
  }
  // Find an actual inter-section pad byte via the table: end of section
  // 0 up to the 64-byte boundary (meta is never 64-aligned in practice
  // — its length is 56 + name length).
  const std::uint64_t s0_end = read_u64(bytes, kHeaderBytes + 8) +
                               read_u64(bytes, kHeaderBytes + 16);
  if (s0_end % kSectionAlignment != 0) {
    std::string mutant = bytes;
    mutant[s0_end] = 1;
    fix_checksums(mutant);  // padding is outside every checksum
    expect_refused(mutant, "nonzero inter-section padding");
  }
}

TEST(SnapshotFuzz, MutantsNeverPoisonSubsequentLoads) {
  // After the whole battery, the pristine bytes still load and
  // re-serialize bit-identically (no global state was corrupted).
  const std::string& bytes = pristine_bytes();
  EXPECT_EQ(bytes,
            serialize_snapshot(deserialize_copy(bytes, Verify::kFull)));
}

}  // namespace
}  // namespace fmm::snapshot
