// Malformed-NDJSON fuzz battery for the service protocol: a seeded
// mutator corrupts well-formed request lines — truncation, type
// confusion, duplicate keys, oversized fields, raw byte flips — and
// QueryService must answer EVERY mutant with exactly one single-line
// error response, never crash, and keep serving pristine requests
// afterwards.  Mirrors test_scheme_fuzz.cpp for the request surface;
// runs under the sanitize preset in CI.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace fmm::service {
namespace {

const std::vector<std::string>& pristine_requests() {
  static const std::vector<std::string> lines = {
      R"({"op": "ping"})",
      R"({"op": "version"})",
      R"({"op": "stats"})",
      R"({"op": "bound", "n": 32, "m": 64})",
      R"({"id": 7, "op": "simulate", "algorithm": "strassen", "n": 16, "m": 32})",
      R"({"op": "liveness", "algorithm": "winograd", "n": 16})",
      R"({"op": "optimal", "algorithm": "strassen", "n": 2, "m": 3})",
      R"({"op": "cdag", "algorithm": "strassen", "n": 8})",
  };
  return lines;
}

/// One response line, no embedded newline, ok:false with a non-empty
/// error string — the whole protocol contract for a rejected line.
void expect_single_line_error(const std::string& mutant,
                              const std::string& response) {
  EXPECT_FALSE(response.empty()) << "mutant: " << mutant;
  EXPECT_EQ(response.find('\n'), std::string::npos)
      << "multi-line response for mutant: " << mutant;
  EXPECT_NE(response.find("\"ok\": false"), std::string::npos)
      << "mutant was accepted: " << mutant << " -> " << response;
  EXPECT_NE(response.find("\"error\": \""), std::string::npos)
      << "no error field for mutant: " << mutant;
}

QueryService& shared_service() {
  static QueryService* service = [] {
    obs::Registry::instance().reset();
    ServiceConfig config;
    config.num_threads = 1;
    return new QueryService(config);
  }();
  return *service;
}

/// Feeds one mutant and proves the daemon survived: the mutant gets a
/// one-line error and a follow-up ping still answers pong.
void expect_rejected_and_alive(const std::string& mutant) {
  QueryService& service = shared_service();
  expect_single_line_error(mutant, service.handle_line(mutant));
  const std::string pong = service.handle_line(R"({"op": "ping"})");
  EXPECT_NE(pong.find("\"pong\": true"), std::string::npos)
      << "daemon wedged after mutant: " << mutant;
}

// --- Truncation ------------------------------------------------------

TEST(ProtocolFuzz, TruncatedLinesAreRefused) {
  // Every strict prefix of a valid request is invalid JSON (or at
  // best an object missing its op) — all must be refused.
  for (const std::string& line : pristine_requests()) {
    for (std::size_t len = 1; len + 1 < line.size(); ++len) {
      expect_rejected_and_alive(line.substr(0, len));
    }
  }
}

// --- Type confusion --------------------------------------------------

TEST(ProtocolFuzz, TypeConfusionIsRefused) {
  const std::vector<std::string> mutants = {
      // wrong scalar types for every typed field
      R"({"op": 3})",
      R"({"op": true})",
      R"({"op": ["ping"]})",
      R"({"op": {"name": "ping"}})",
      R"({"op": "bound", "n": "32", "m": 64})",
      R"({"op": "bound", "n": 32, "m": "64"})",
      R"({"op": "bound", "n": 32.5, "m": 64})",
      R"({"op": "bound", "n": null, "m": 64})",
      R"({"op": "bound", "n": [32], "m": 64})",
      R"({"op": "simulate", "algorithm": 7, "n": 16, "m": 32})",
      R"({"op": "simulate", "algorithm": null, "n": 16, "m": 32})",
      R"({"op": "optimal", "algorithm": "strassen", "n": 2, "m": 3, "remat": "yes"})",
      R"({"op": "optimal", "algorithm": "strassen", "n": 2, "m": 3, "remat": 1})",
      R"({"id": "seven", "op": "ping"})",
      R"({"id": [], "op": "ping"})",
      // non-object top level
      R"("ping")",
      R"([{"op": "ping"}])",
      R"(42)",
      R"(null)",
      R"(true)",
  };
  for (const std::string& mutant : mutants) {
    expect_rejected_and_alive(mutant);
  }
}

// --- Duplicate keys --------------------------------------------------

TEST(ProtocolFuzz, DuplicateKeysAreRefused) {
  const std::vector<std::string> mutants = {
      R"({"op": "ping", "op": "ping"})",
      R"({"op": "ping", "op": "shutdown"})",
      R"({"op": "bound", "n": 32, "n": 64, "m": 64})",
      R"({"op": "bound", "n": 32, "m": 64, "m": 128})",
      R"({"id": 1, "id": 2, "op": "ping"})",
      R"({"op": "simulate", "algorithm": "strassen", "algorithm": "winograd", "n": 16, "m": 32})",
  };
  for (const std::string& mutant : mutants) {
    expect_rejected_and_alive(mutant);
  }
}

// --- Oversized fields ------------------------------------------------

TEST(ProtocolFuzz, OversizedFieldsAreRefused) {
  const std::string huge_name(1 << 16, 'x');
  const std::vector<std::string> mutants = {
      // unknown (because absurd) algorithm name, 64 KiB of it
      R"({"op": "simulate", "algorithm": ")" + huge_name +
          R"(", "n": 16, "m": 32})",
      // integer overflow / out-of-range numerics
      R"({"op": "bound", "n": 99999999999999999999999999, "m": 64})",
      R"({"op": "bound", "n": 32, "m": -9223372036854775809})",
      R"({"op": "bound", "n": -32, "m": 64})",
      R"({"op": "bound", "n": 0, "m": 64})",
      // deep nesting in an ignored position still has to parse-or-die
      R"({"op": "ping", "extra": [[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]})",
  };
  for (const std::string& mutant : mutants) {
    expect_rejected_and_alive(mutant);
  }
}

// --- Seeded byte-flip sweep ------------------------------------------

TEST(ProtocolFuzz, SeededByteFlipsNeverCrash) {
  // Random single-byte corruption over every pristine line: the result
  // must be either a valid response (flip landed in an ignored spot or
  // produced a different-but-valid request) or a one-line error —
  // never a crash, never silence.  Seeded, so failures replay.
  Rng rng(20260808);
  QueryService& service = shared_service();
  for (const std::string& line : pristine_requests()) {
    for (int round = 0; round < 64; ++round) {
      std::string mutant = line;
      const std::size_t pos = rng.uniform(mutant.size());
      const char replacement =
          static_cast<char>(33 + rng.uniform(94));  // printable ASCII
      if (mutant[pos] == replacement) {
        continue;
      }
      mutant[pos] = replacement;
      const std::string response = service.handle_line(mutant);
      EXPECT_FALSE(response.empty()) << "mutant: " << mutant;
      EXPECT_EQ(response.find('\n'), std::string::npos)
          << "mutant: " << mutant;
      EXPECT_TRUE(response.find("\"ok\": true") != std::string::npos ||
                  response.find("\"ok\": false") != std::string::npos)
          << "mutant: " << mutant << " -> " << response;
    }
  }
  const std::string pong = service.handle_line(R"({"op": "ping"})");
  EXPECT_NE(pong.find("\"pong\": true"), std::string::npos);
}

// --- Full-session battery --------------------------------------------

TEST(ProtocolFuzz, MutantSessionDrainsCompletely) {
  // A serve() session interleaving mutants with pristine requests:
  // exactly one response line per non-blank request line, in order,
  // and the pristine requests still succeed.
  obs::Registry::instance().reset();
  ServiceConfig config;
  config.num_threads = 2;
  QueryService service(config);
  const std::vector<std::string> session = {
      R"({"op": "ping"})",
      R"({"op": 3})",
      R"({"op": "bound", "n": 32, "m": 64})",
      R"({"op": "bound", "n": 32,)",  // truncated
      R"({"op": "ping", "op": "shutdown"})",  // duplicate key
      R"({"op": "simulate", "algorithm": "strassen", "n": 16, "m": 32})",
      "not json at all",
      R"({"op": "ping"})",
  };
  std::string input;
  for (const std::string& line : session) {
    input += line;
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_FALSE(service.serve(in, out));

  std::vector<std::string> responses;
  {
    std::istringstream parse(out.str());
    std::string line;
    while (std::getline(parse, line)) {
      responses.push_back(line);
    }
  }
  ASSERT_EQ(responses.size(), session.size());
  const std::vector<bool> expect_ok = {true, false, true,  false,
                                       false, true, false, true};
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_NE(responses[i].find(expect_ok[i] ? "\"ok\": true"
                                             : "\"ok\": false"),
              std::string::npos)
        << "line " << i << ": " << responses[i];
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(session.size()));
  EXPECT_EQ(stats.responded, stats.requests);
}

}  // namespace
}  // namespace fmm::service
