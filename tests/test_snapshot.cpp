// Snapshot subsystem tests (src/snapshot/): fmm.snap round-trips must
// reconstruct a CDAG indistinguishable from the built one (graph
// content, roles, pools, metadata, memory footprint, simulation
// results), and the SnapshotStore must behave as a content-addressed,
// crash-consistent second-level cache: hit/miss/publish accounting,
// first-writer-wins publish, quarantine of refused files, byte-budget
// eviction, and safe concurrent use (the tsan preset runs these suites).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"
#include "snapshot/format.hpp"
#include "snapshot/store.hpp"

namespace fmm::snapshot {
namespace {

namespace fs = std::filesystem;

cdag::Cdag build_strassen(std::size_t n) {
  return cdag::build_cdag(bilinear::strassen(), n);
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      std::string(testing::TempDir()) + "snapstore_" + tag;
  fs::remove_all(dir);
  return dir;
}

std::int64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

void expect_equal_cdags(const cdag::Cdag& a, const cdag::Cdag& b) {
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.roles, b.roles);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.base, b.base);
  EXPECT_EQ(a.num_products, b.num_products);
  EXPECT_EQ(a.algorithm_name, b.algorithm_name);
  EXPECT_EQ(a.inputs_a, b.inputs_a);
  EXPECT_EQ(a.inputs_b, b.inputs_b);
  EXPECT_EQ(a.outputs, b.outputs);
  ASSERT_EQ(a.subproblem_levels.size(), b.subproblem_levels.size());
  for (std::size_t i = 0; i < a.subproblem_levels.size(); ++i) {
    const cdag::SubproblemLevel& la = a.subproblem_levels[i];
    const cdag::SubproblemLevel& lb = b.subproblem_levels[i];
    EXPECT_EQ(la.r, lb.r);
    EXPECT_EQ(la.count, lb.count);
    EXPECT_TRUE(la.output_pool == lb.output_pool);
    EXPECT_TRUE(la.input_pool == lb.input_pool);
    EXPECT_TRUE(la.span_begin == lb.span_begin);
    EXPECT_TRUE(la.span_end == lb.span_end);
  }
}

TEST(SnapshotFormat, RoundTripIsContentIdentical) {
  const cdag::Cdag built = build_strassen(8);
  const std::string bytes = serialize_snapshot(built);
  auto keep = std::make_shared<std::string>(bytes);
  const cdag::Cdag loaded = deserialize_snapshot(
      {reinterpret_cast<const std::byte*>(keep->data()), keep->size()},
      keep, Verify::kFull);
  expect_equal_cdags(built, loaded);
  loaded.validate();
}

TEST(SnapshotFormat, MappedVerificationLoadsIdentically) {
  const cdag::Cdag built = build_strassen(8);
  auto keep = std::make_shared<std::string>(serialize_snapshot(built));
  const cdag::Cdag loaded = deserialize_snapshot(
      {reinterpret_cast<const std::byte*>(keep->data()), keep->size()},
      keep, Verify::kMapped);
  expect_equal_cdags(built, loaded);
}

TEST(SnapshotFormat, MemoryFootprintMatchesBuiltCdag) {
  // The service's byte-identical `cdag` response renders memory_bytes;
  // a loaded view must report exactly what the built graph reports.
  const cdag::Cdag built = build_strassen(8);
  auto keep = std::make_shared<std::string>(serialize_snapshot(built));
  const cdag::Cdag loaded = deserialize_snapshot(
      {reinterpret_cast<const std::byte*>(keep->data()), keep->size()},
      keep, Verify::kFull);
  EXPECT_EQ(built.graph.memory_bytes(), loaded.graph.memory_bytes());
  EXPECT_EQ(service::cdag_memory_bytes(built),
            service::cdag_memory_bytes(loaded));
}

TEST(SnapshotFormat, SerializationIsDeterministicAndStable) {
  const cdag::Cdag built = build_strassen(4);
  const std::string once = serialize_snapshot(built);
  EXPECT_EQ(once, serialize_snapshot(built));
  // Round-tripping through a loaded view re-serializes bit-identically:
  // the format captures the CDAG completely.
  auto keep = std::make_shared<std::string>(once);
  const cdag::Cdag loaded = deserialize_snapshot(
      {reinterpret_cast<const std::byte*>(keep->data()), keep->size()},
      keep, Verify::kFull);
  EXPECT_EQ(once, serialize_snapshot(loaded));
}

TEST(SnapshotFormat, SimulationResultsAreBitIdentical) {
  const cdag::Cdag built = build_strassen(8);
  auto keep = std::make_shared<std::string>(serialize_snapshot(built));
  const cdag::Cdag loaded = deserialize_snapshot(
      {reinterpret_cast<const std::byte*>(keep->data()), keep->size()},
      keep, Verify::kFull);
  pebble::SimOptions options;
  options.cache_size = 64;
  const auto schedule = pebble::dfs_schedule(built);
  EXPECT_EQ(schedule, pebble::dfs_schedule(loaded));
  const pebble::SimResult a = pebble::simulate(built, schedule, options);
  const pebble::SimResult b = pebble::simulate(loaded, schedule, options);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.weighted_io, b.weighted_io);
  EXPECT_EQ(a.computations, b.computations);
  EXPECT_EQ(a.recomputations, b.recomputations);
}

TEST(SnapshotFormat, FileRoundTrip) {
  const std::string dir = fresh_dir("file_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/roundtrip.fmmsnap";
  const cdag::Cdag built = build_strassen(4);
  write_snapshot_file(built, path);
  expect_equal_cdags(built, load_snapshot_file(path, Verify::kFull));
  expect_equal_cdags(built, load_snapshot_file(path, Verify::kMapped));
}

TEST(SnapshotFormat, ChecksumSeparatesNearbyInputs) {
  std::string data(4096, '\x5a');
  const std::uint64_t reference = snap_checksum(data.data(), data.size());
  EXPECT_EQ(reference, snap_checksum(data.data(), data.size()));
  for (const std::size_t at : {std::size_t{0}, std::size_t{7},
                               std::size_t{64}, data.size() - 1}) {
    std::string mutated = data;
    mutated[at] ^= 1;
    EXPECT_NE(reference, snap_checksum(mutated.data(), mutated.size()))
        << "bit flip at " << at;
  }
  // Length is folded in, so a prefix never collides with the whole.
  EXPECT_NE(reference, snap_checksum(data.data(), data.size() - 8));
}

TEST(SnapshotStore, MissPublishHitAccounting) {
  const std::string dir = fresh_dir("accounting");
  SnapshotStore store({dir, 0, Verify::kFull});
  const cdag::Cdag built = build_strassen(4);
  const std::int64_t lookups0 = counter_value("snapshot.lookups");
  const std::int64_t hits0 = counter_value("snapshot.hits");
  const std::int64_t misses0 = counter_value("snapshot.misses");

  EXPECT_FALSE(store.try_load("fp-accounting", 4).has_value());
  EXPECT_TRUE(store.publish("fp-accounting", 4, built));
  const auto loaded = store.try_load("fp-accounting", 4);
  ASSERT_TRUE(loaded.has_value());
  expect_equal_cdags(built, *loaded);

  EXPECT_EQ(counter_value("snapshot.lookups") - lookups0, 2);
  EXPECT_EQ(counter_value("snapshot.hits") - hits0, 1);
  EXPECT_EQ(counter_value("snapshot.misses") - misses0, 1);
  const std::string json = store.stats_json();
  EXPECT_NE(json.find("\"schema\":\"fmm.snapshot\""), std::string::npos);
  EXPECT_NE(json.find("\"files\":1"), std::string::npos);
}

TEST(SnapshotStore, PublishIsFirstWriterWins) {
  const std::string dir = fresh_dir("first_writer");
  SnapshotStore store({dir, 0, Verify::kFull});
  const cdag::Cdag built = build_strassen(4);
  EXPECT_TRUE(store.publish("fp-first", 4, built));
  EXPECT_FALSE(store.publish("fp-first", 4, built));
}

TEST(SnapshotStore, RefusedFileIsQuarantinedAndCountsAsMiss) {
  const std::string dir = fresh_dir("quarantine");
  SnapshotStore store({dir, 0, Verify::kFull});
  const cdag::Cdag built = build_strassen(4);
  ASSERT_TRUE(store.publish("fp-corrupt", 4, built));
  const std::string path = store.path_for("fp-corrupt", 4);
  {
    // Flip one payload byte: the checksum pass must refuse the file.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(1024);
    f.put('\xff');
  }
  const std::int64_t rejected0 = counter_value("snapshot.corrupt_rejected");
  EXPECT_FALSE(store.try_load("fp-corrupt", 4).has_value());
  EXPECT_EQ(counter_value("snapshot.corrupt_rejected") - rejected0, 1);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
  // The slot is rebuildable: publish works again after quarantine.
  EXPECT_TRUE(store.publish("fp-corrupt", 4, built));
  EXPECT_TRUE(store.try_load("fp-corrupt", 4).has_value());
}

TEST(SnapshotStore, EvictsOldestToByteBudgetButNeverLastFile) {
  const std::string dir = fresh_dir("evict");
  const cdag::Cdag small = build_strassen(2);
  const std::uint64_t one_file =
      serialize_snapshot(small).size();
  // Budget fits roughly two files; publishing four must evict the
  // oldest ones but always keep at least the newest.
  SnapshotStore store({dir, 2 * one_file + 64, Verify::kFull});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.publish("fp-evict-" + std::to_string(i), 2, small));
    // Distinct mtimes on coarse-granularity filesystems are not
    // guaranteed; the name tie-break keeps eviction deterministic.
  }
  EXPECT_GT(counter_value("snapshot.evictions"), 0);
  std::size_t files = 0;
  std::uint64_t bytes = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files += 1;
    bytes += entry.file_size();
  }
  EXPECT_GE(files, 1u);
  EXPECT_LE(bytes, 2 * one_file + 64);
  // The just-published snapshot survives.
  EXPECT_TRUE(fs::exists(store.path_for("fp-evict-3", 2)));
}

TEST(SnapshotStore, ZeroBudgetMeansUnlimited) {
  const std::string dir = fresh_dir("unlimited");
  SnapshotStore store({dir, 0, Verify::kFull});
  const cdag::Cdag small = build_strassen(2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.publish("fp-keep-" + std::to_string(i), 2, small));
  }
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    files += 1;
  }
  EXPECT_EQ(files, 4u);
}

TEST(SnapshotStore, ConcurrentPublishAndLookupStress) {
  const std::string dir = fresh_dir("stress");
  SnapshotStore store({dir, 0, Verify::kFull});
  const cdag::Cdag built = build_strassen(4);
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  std::atomic<int> loads{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string fp = "fp-stress-" + std::to_string(i % 3);
        if (!store.try_load(fp, 4).has_value()) {
          store.publish(fp, 4, built);
        } else {
          loads.fetch_add(1);
        }
        (void)t;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_GT(loads.load(), 0);
  for (int i = 0; i < 3; ++i) {
    const auto loaded = store.try_load("fp-stress-" + std::to_string(i), 4);
    ASSERT_TRUE(loaded.has_value());
    expect_equal_cdags(built, *loaded);
  }
}

TEST(SnapshotSource, CachingCdagSourceFallsBackToStore) {
  const std::string dir = fresh_dir("source");
  SnapshotStore store({dir, 0, Verify::kFull});
  const std::int64_t builds0 = counter_value("cdag.builds");

  // First process: memory miss + store miss -> build + publish.
  {
    service::ContentCache cache;
    service::CachingCdagSource source(cache, &store);
    const auto cdag = source.get_cdag("strassen", 8);
    ASSERT_NE(cdag, nullptr);
    EXPECT_EQ(counter_value("cdag.builds") - builds0, 1);
    // Second fetch is a pure memory hit.
    EXPECT_EQ(source.get_cdag("strassen", 8), cdag);
    EXPECT_EQ(counter_value("cdag.builds") - builds0, 1);
  }

  // "Second worker": fresh memory cache, same store -> loads, no build.
  {
    service::ContentCache cache;
    service::CachingCdagSource source(cache, &store);
    const auto cdag = source.get_cdag("strassen", 8);
    ASSERT_NE(cdag, nullptr);
    EXPECT_EQ(counter_value("cdag.builds") - builds0, 1);
    expect_equal_cdags(*source.get_cdag("strassen", 8), *cdag);
  }

  // Without a store, a fresh cache rebuilds.
  {
    service::ContentCache cache;
    service::CachingCdagSource source(cache);
    ASSERT_NE(source.get_cdag("strassen", 8), nullptr);
    EXPECT_EQ(counter_value("cdag.builds") - builds0, 2);
  }
}

TEST(SnapshotSource, ServiceConfigMountsStore) {
  const std::string dir = fresh_dir("service_mount");
  service::ServiceConfig config;
  config.num_threads = 1;
  config.snapshot_dir = dir;
  service::QueryService service(config);
  ASSERT_NE(service.snapshot_store(), nullptr);
  EXPECT_EQ(service.snapshot_store()->directory(), dir);
  const std::string response = service.handle_line(
      R"({"op": "cdag", "algorithm": "strassen", "n": 4})");
  EXPECT_NE(response.find("\"ok\": true"), std::string::npos) << response;
  EXPECT_TRUE(fs::exists(dir));
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    files += 1;
  }
  EXPECT_EQ(files, 1u);
}

}  // namespace
}  // namespace fmm::snapshot
