// Representation-equivalence sweep: the CSR graph core must be
// observationally identical to the legacy adjacency-list Digraph on the
// machinery the paper's results depend on.  For Strassen H^{n x n},
// n in {4, 8, 16}, we check that
//   - the frozen CsrGraph survives a roundtrip through Digraph exactly,
//   - pebble simulation results are bit-identical when the graph is
//     rebuilt from the legacy representation,
//   - min vertex cuts, disjoint-path counts, and dominator certification
//     agree between the CsrGraph and Digraph overloads.
#include <gtest/gtest.h>

#include <vector>

#include "bilinear/catalog.hpp"
#include "cdag/builder.hpp"
#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/vertex_cut.hpp"
#include "pebble/machine.hpp"
#include "pebble/schedules.hpp"

namespace fmm {
namespace {

class CsrEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CsrEquivalence, RoundtripThroughDigraphIsExact) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), GetParam());
  const graph::Digraph legacy = graph::digraph_from_csr(cdag.graph);
  EXPECT_EQ(legacy.num_vertices(), cdag.graph.num_vertices());
  EXPECT_EQ(legacy.num_edges(), cdag.graph.num_edges());
  EXPECT_EQ(graph::csr_from_digraph(legacy), cdag.graph);
  // The CSR order is the identity permutation (freeze invariant u < v);
  // every edge of the roundtripped Digraph must respect it.
  const auto order = cdag.graph.topological_order();
  for (graph::VertexId v = 0; v < cdag.graph.num_vertices(); ++v) {
    ASSERT_EQ(order[v], v);
    for (const graph::VertexId w : legacy.out_neighbors(v)) {
      EXPECT_LT(v, w);
    }
  }
}

TEST_P(CsrEquivalence, SimulationBitIdenticalAfterRoundtrip) {
  const std::size_t n = GetParam();
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), n);
  // Rebuild the graph from the legacy representation; every SimResult
  // field (including the step-by-step I/O trace) must be unchanged.
  cdag::Cdag rebuilt = cdag;
  rebuilt.graph =
      graph::csr_from_digraph(graph::digraph_from_csr(cdag.graph));

  for (const auto policy : {pebble::ReplacementPolicy::kLru,
                            pebble::ReplacementPolicy::kBelady}) {
    pebble::SimOptions options;
    options.cache_size = static_cast<std::int64_t>(2 * n);
    options.replacement = policy;
    const auto schedule = pebble::dfs_schedule(cdag);
    EXPECT_EQ(schedule, pebble::dfs_schedule(rebuilt));
    const auto a = pebble::simulate(cdag, schedule, options);
    const auto b = pebble::simulate(rebuilt, schedule, options);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.weighted_io, b.weighted_io);
    EXPECT_EQ(a.computations, b.computations);
    EXPECT_EQ(a.recomputations, b.recomputations);
    EXPECT_EQ(a.summary.compute_order, b.summary.compute_order);
    EXPECT_EQ(a.summary.io_before, b.summary.io_before);
  }

  pebble::SimOptions remat;
  remat.cache_size = static_cast<std::int64_t>(2 * n * n);
  remat.writeback = pebble::WritebackPolicy::kDropRecomputable;
  const auto a =
      pebble::simulate_with_recomputation(cdag, pebble::dfs_schedule(cdag),
                                          remat);
  const auto b = pebble::simulate_with_recomputation(
      rebuilt, pebble::dfs_schedule(rebuilt), remat);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.recomputations, b.recomputations);
  EXPECT_EQ(a.summary.compute_order, b.summary.compute_order);
}

TEST_P(CsrEquivalence, VertexCutsAgreeAcrossRepresentations) {
  const cdag::Cdag cdag = cdag::build_cdag(bilinear::strassen(), GetParam());
  const graph::Digraph legacy = graph::digraph_from_csr(cdag.graph);
  const std::vector<graph::VertexId> inputs = cdag.all_inputs();
  Rng rng(2026);

  const cdag::SubproblemLevel& level = cdag.subproblems(2);
  for (int trial = 0; trial < 4; ++trial) {
    const auto z_span = level.outputs_of(rng.uniform(level.count));
    const std::vector<graph::VertexId> z(z_span.begin(), z_span.end());

    const auto csr_cut = graph::min_vertex_cut(cdag.graph, inputs, z);
    const auto legacy_cut = graph::min_vertex_cut(legacy, inputs, z);
    EXPECT_EQ(csr_cut.cut_size, legacy_cut.cut_size);
    EXPECT_EQ(csr_cut.cut_vertices, legacy_cut.cut_vertices);

    EXPECT_EQ(graph::max_vertex_disjoint_paths(cdag.graph, inputs, z),
              graph::max_vertex_disjoint_paths(legacy, inputs, z));

    // Dominator certification: the found minimum cut IS a dominator in
    // both representations; a random strict subset of it is not checked
    // for equality of truth value only.
    EXPECT_TRUE(
        graph::is_dominator_set(cdag.graph, inputs, z, csr_cut.cut_vertices));
    EXPECT_TRUE(
        graph::is_dominator_set(legacy, inputs, z, csr_cut.cut_vertices));
    const graph::VertexId lone = static_cast<graph::VertexId>(
        inputs.size() + rng.uniform(cdag.graph.num_vertices() - inputs.size()));
    EXPECT_EQ(graph::is_dominator_set(cdag.graph, inputs, z, {lone}),
              graph::is_dominator_set(legacy, inputs, z, {lone}));
  }
}

INSTANTIATE_TEST_SUITE_P(StrassenSizes, CsrEquivalence,
                         ::testing::Values(4u, 8u, 16u));

}  // namespace
}  // namespace fmm
